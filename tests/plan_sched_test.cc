// Tests for the plan/schedule/execute engine: plan structure (chains,
// splitting, single-shard mode), MachinePool reuse, work-stealing queue
// coverage, and the determinism contract — the merged CampaignResult must be
// bit-identical across worker counts and identical to the legacy sequential
// loop, for every OS variant and every shard size.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/plan.h"
#include "core/sched.h"
#include "tests/test_util.h"

namespace ballista::core {
namespace {

using sim::OsVariant;
using testing::shared_world;

void expect_same_result(const CampaignResult& a, const CampaignResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.variant, b.variant) << label;
  EXPECT_EQ(a.reboots, b.reboots) << label;
  EXPECT_EQ(a.total_cases, b.total_cases) << label;
  EXPECT_EQ(a.event_counters, b.event_counters) << label;
  ASSERT_EQ(a.stats.size(), b.stats.size()) << label;
  for (std::size_t i = 0; i < a.stats.size(); ++i) {
    const MutStats& x = a.stats[i];
    const MutStats& y = b.stats[i];
    const std::string at = label + " / " + std::string(x.mut->name);
    EXPECT_EQ(x.mut, y.mut) << at;
    EXPECT_EQ(x.planned, y.planned) << at;
    EXPECT_EQ(x.executed, y.executed) << at;
    EXPECT_EQ(x.passes, y.passes) << at;
    EXPECT_EQ(x.aborts, y.aborts) << at;
    EXPECT_EQ(x.restarts, y.restarts) << at;
    EXPECT_EQ(x.silent_candidates, y.silent_candidates) << at;
    EXPECT_EQ(x.hindering, y.hindering) << at;
    EXPECT_EQ(x.catastrophic, y.catastrophic) << at;
    EXPECT_EQ(x.crash_case, y.crash_case) << at;
    EXPECT_EQ(x.crash_detail, y.crash_detail) << at;
    EXPECT_EQ(x.crash_tuple, y.crash_tuple) << at;
    EXPECT_EQ(x.crash_reproducible_single, y.crash_reproducible_single) << at;
    EXPECT_EQ(x.case_codes, y.case_codes) << at;
    EXPECT_EQ(x.event_counts, y.event_counts) << at;
    // Crash-trace tails are captured on the machine that died; schedules
    // with different tick streams must still agree on the causal chain
    // (event kinds + case stamps), though raw tick values may differ.
    ASSERT_EQ(x.crash_trace.size(), y.crash_trace.size()) << at;
    for (std::size_t k = 0; k < x.crash_trace.size(); ++k) {
      EXPECT_EQ(x.crash_trace[k].kind, y.crash_trace[k].kind) << at;
      EXPECT_EQ(x.crash_trace[k].case_index, y.crash_trace[k].case_index)
          << at;
    }
  }
}

// --- plan structure ---------------------------------------------------------

TEST(Plan, CoversEveryPlannedCaseExactlyOnce) {
  const auto& world = shared_world();
  for (OsVariant v : sim::kAllVariants) {
    PlanOptions opt;
    opt.cap = 30;
    opt.shard_cases = 7;
    const Plan plan = make_plan(v, world.registry, opt);
    // Per-MuT case coverage: the union of ranges is [0, planned), disjoint.
    std::map<const MuT*, std::set<std::uint64_t>> seen;
    for (const Shard& s : plan.shards) {
      for (const ShardItem& it : s.items) {
        EXPECT_EQ(plan.muts.at(it.mut_index), it.mut);
        for (std::uint64_t i = 0; i < it.range.count; ++i) {
          const bool fresh =
              seen[it.mut].insert(it.range.first + i).second;
          EXPECT_TRUE(fresh) << it.mut->name << " case duplicated";
        }
      }
    }
    std::uint64_t covered = 0;
    for (const auto& [mut, cases] : seen) covered += cases.size();
    EXPECT_EQ(covered, plan.total_planned) << sim::variant_name(v);
  }
}

TEST(Plan, DeferredHazardsChainUntilTheFuseIsBurned) {
  const auto& world = shared_world();
  PlanOptions opt;
  opt.cap = 30;
  const Plan plan = make_plan(OsVariant::kWin98, world.registry, opt);
  const int fuse = sim::personality_for(OsVariant::kWin98).corruption_fuse;
  for (const Shard& s : plan.shards) {
    for (std::size_t i = 0; i < s.items.size(); ++i) {
      if (s.items[i].mut->hazard_on(OsVariant::kWin98) !=
          CrashStyle::kDeferred)
        continue;
      // Enough later cases must ride in the same shard to burn the fuse —
      // or the chain runs to the end of the plan (nothing left to chain).
      std::uint64_t tail = 0;
      for (std::size_t j = i + 1; j < s.items.size(); ++j)
        tail += s.items[j].range.count;
      const bool last_shard = s.index + 1 == plan.shards.size();
      EXPECT_TRUE(tail >= static_cast<std::uint64_t>(fuse) || last_shard)
          << s.items[i].mut->name << " dirty window leaks out of shard "
          << s.index;
    }
  }
}

TEST(Plan, HazardFreeVariantsSplitIntoCaseRanges) {
  const auto& world = shared_world();
  PlanOptions opt;
  opt.cap = 30;
  opt.shard_cases = 7;
  // NT4 has no shared arena: every MuT is chain-free and splittable.
  const Plan plan = make_plan(OsVariant::kWinNT4, world.registry, opt);
  bool saw_split = false;
  for (const Shard& s : plan.shards) {
    for (const ShardItem& it : s.items) {
      EXPECT_LE(it.range.count, opt.shard_cases);
      if (it.range.first != 0) saw_split = true;
    }
  }
  EXPECT_TRUE(saw_split);
  EXPECT_GT(plan.shards.size(), plan.muts.size());
}

TEST(Plan, SingleShardModeEmitsOneShard) {
  const auto& world = shared_world();
  PlanOptions opt;
  opt.cap = 30;
  opt.single_shard = true;
  const Plan plan = make_plan(OsVariant::kWin98, world.registry, opt);
  ASSERT_EQ(plan.shards.size(), 1u);
  EXPECT_EQ(plan.shards[0].case_count(), plan.total_planned);
}

// --- scheduling infrastructure ----------------------------------------------

TEST(MachinePool, CheckoutResetsToPristineBootState) {
  sim::Machine reference(OsVariant::kWin98);
  MachinePool pool(OsVariant::kWin98, 2);
  sim::Machine& m = pool.checkout(0);
  m.age_arena(3);
  try {
    auto proc = m.create_process();
    m.panic(sim::PanicKind::kInduced);
  } catch (const sim::KernelPanic&) {
  }
  sim::Machine& again = pool.checkout(0);
  EXPECT_EQ(&again, &m);  // same machine, reused
  EXPECT_FALSE(again.crashed());
  EXPECT_EQ(again.panic_count(), 0);
  EXPECT_EQ(again.arena().corruption(), 0);
  EXPECT_EQ(again.ticks(), reference.ticks());
  // Fresh pids: a new process gets the same pid a fresh machine would give.
  EXPECT_EQ(again.create_process()->pid(), reference.create_process()->pid());
}

TEST(MachinePool, VariantRoundTripReusesTheCachedMachine) {
  // The campaign service checks a slot out for different variants as it
  // multiplexes sessions; returning to an earlier variant must hit the slot
  // cache, not boot a new machine.
  MachinePool pool(OsVariant::kWin98, 1);
  sim::Machine& a = pool.checkout(0);
  EXPECT_EQ(a.variant(), OsVariant::kWin98);
  EXPECT_EQ(pool.machine_rebuilds(), 1u);

  sim::Machine& b = pool.checkout(0, OsVariant::kWinNT4);
  EXPECT_EQ(b.variant(), OsVariant::kWinNT4);
  EXPECT_NE(&b, &a);
  EXPECT_EQ(pool.machine_rebuilds(), 2u);

  a.age_arena(2);  // dirty it so the reset-on-hit is observable
  sim::Machine& a_again = pool.checkout(0, OsVariant::kWin98);
  EXPECT_EQ(&a_again, &a);  // cache hit: the very same machine object
  EXPECT_EQ(pool.machine_rebuilds(), 2u);
  EXPECT_EQ(a_again.arena().corruption(), 0);  // still pristine on checkout
}

TEST(MachinePool, SlotCacheEvictsTheLeastRecentlyUsedVariant) {
  static_assert(MachinePool::kSlotCacheCap == 4,
                "sequence below assumes a 4-deep slot cache");
  MachinePool pool(OsVariant::kWin95, 1);
  const OsVariant seq[] = {OsVariant::kWin95, OsVariant::kWin98,
                           OsVariant::kWin98SE, OsVariant::kWinNT4,
                           OsVariant::kWin2000};
  for (OsVariant v : seq) (void)pool.checkout(0, v);
  EXPECT_EQ(pool.machine_rebuilds(), 5u);  // five distinct variants

  // kWin95 was pushed out by the fifth variant: coming back rebuilds it...
  (void)pool.checkout(0, OsVariant::kWin95);
  EXPECT_EQ(pool.machine_rebuilds(), 6u);
  // ...which in turn evicted kWin98 (now the LRU); the rest are still warm.
  (void)pool.checkout(0, OsVariant::kWin2000);
  (void)pool.checkout(0, OsVariant::kWinNT4);
  (void)pool.checkout(0, OsVariant::kWin98SE);
  EXPECT_EQ(pool.machine_rebuilds(), 6u);
  (void)pool.checkout(0, OsVariant::kWin98);
  EXPECT_EQ(pool.machine_rebuilds(), 7u);
}

TEST(MachinePool, WorkerSlotsCacheIndependently) {
  MachinePool pool(OsVariant::kLinux, 2);
  sim::Machine& w0 = pool.checkout(0);
  sim::Machine& w1 = pool.checkout(1);
  EXPECT_NE(&w0, &w1);
  EXPECT_EQ(pool.machine_rebuilds(), 2u);
  // Each slot hits its own cache on re-checkout.
  EXPECT_EQ(&pool.checkout(0), &w0);
  EXPECT_EQ(&pool.checkout(1), &w1);
  EXPECT_EQ(pool.machine_rebuilds(), 2u);
}

TEST(ShardQueue, DeliversEveryShardExactlyOnce) {
  const auto& world = shared_world();
  PlanOptions opt;
  opt.cap = 30;
  opt.shard_cases = 5;
  const Plan plan = make_plan(OsVariant::kLinux, world.registry, opt);
  ASSERT_GT(plan.shards.size(), 4u);

  ShardQueue queue(plan, 3);
  std::set<const Shard*> delivered;
  // Worker 1 drains everything: its own deque first, then steals the rest.
  while (const Shard* s = queue.next(1)) {
    EXPECT_TRUE(delivered.insert(s).second) << "shard delivered twice";
  }
  EXPECT_EQ(delivered.size(), plan.shards.size());
  EXPECT_EQ(queue.next(0), nullptr);
  EXPECT_EQ(queue.next(2), nullptr);
}

// --- the determinism contract -----------------------------------------------

TEST(ParallelDeterminism, EngineMatchesSequentialOnEveryVariant) {
  const auto& world = shared_world();
  for (OsVariant v : sim::kAllVariants) {
    CampaignOptions opt;
    opt.cap = 25;
    opt.shard_cases = 8;
    const auto legacy = Campaign::run_sequential(v, world.registry, opt);

    opt.jobs = 1;
    const auto serial = Campaign::run(v, world.registry, opt);
    expect_same_result(legacy, serial,
                       std::string(sim::variant_name(v)) + " jobs=1");

    opt.jobs = 4;
    const auto parallel = Campaign::run(v, world.registry, opt);
    expect_same_result(legacy, parallel,
                       std::string(sim::variant_name(v)) + " jobs=4");
  }
}

TEST(ParallelDeterminism, ShardSizeOneMatchesSequential) {
  const auto& world = shared_world();
  CampaignOptions opt;
  opt.cap = 20;
  const auto legacy =
      Campaign::run_sequential(OsVariant::kWin98, world.registry, opt);
  opt.shard_cases = 1;  // every splittable case is its own shard
  opt.jobs = 4;
  const auto parallel = Campaign::run(OsVariant::kWin98, world.registry, opt);
  expect_same_result(legacy, parallel, "shard_cases=1");
}

TEST(ParallelDeterminism, ShardSizeBeyondCaseCountMatchesSequential) {
  const auto& world = shared_world();
  CampaignOptions opt;
  opt.cap = 20;
  const auto legacy =
      Campaign::run_sequential(OsVariant::kWinCE, world.registry, opt);
  opt.shard_cases = 1'000'000;  // no MuT ever splits
  opt.jobs = 4;
  const auto parallel = Campaign::run(OsVariant::kWinCE, world.registry, opt);
  expect_same_result(legacy, parallel, "shard_cases=1000000");
}

TEST(ParallelDeterminism, FilesystemMutationsDoNotLeakAcrossShards) {
  // Regression: chmod("/", ...)-style root metadata damage used to survive
  // Executor's per-case fixture reset (and Machine::reset), so a worker
  // machine that had already run the mutating shard gave different results
  // for later shards than a fresh one — scheduling-dependent output.
  TypeLibrary lib;
  auto& t = lib.make("tiny");
  for (int i = 0; i < 4; ++i)
    t.add("v" + std::to_string(i), false,
          [i](ValueCtx&) { return static_cast<RawArg>(i); });
  Registry reg;
  auto make = [&](std::string name, ApiImpl impl) {
    MuT m;
    m.name = std::move(name);
    m.api = ApiKind::kWin32Sys;
    m.group = FuncGroup::kProcessPrimitives;
    m.params = {&lib.get("tiny")};
    m.impl = std::move(impl);
    m.variant_mask = kMaskEverything;
    return m;
  };
  reg.add(make("poisons_root", [](CallContext& c) {
    c.machine().fs().root()->read_only = true;
    return ok(0);
  }));
  reg.add(make("observes_root", [](CallContext& c) -> CallOutcome {
    if (c.machine().fs().root()->read_only) return c.win_fail(5);
    return ok(0);
  }));

  CampaignOptions opt;
  opt.shard_cases = 1;  // maximal shard interleaving
  const auto legacy =
      Campaign::run_sequential(OsVariant::kWinNT4, reg, opt);
  opt.jobs = 4;
  const auto parallel = Campaign::run(OsVariant::kWinNT4, reg, opt);
  expect_same_result(legacy, parallel, "fs leak");
  // The per-case fixture reset means nobody ever observes the poisoned root.
  EXPECT_EQ(parallel.find("observes_root")->passes, 4u);
}

TEST(ParallelDeterminism, MachineSetupForcesExactSequentialBehaviour) {
  const auto& world = shared_world();
  CampaignOptions opt;
  opt.cap = 20;
  opt.machine_setup = [](sim::Machine& m) { m.age_arena(5); };
  const auto legacy =
      Campaign::run_sequential(OsVariant::kWin95, world.registry, opt);
  opt.jobs = 4;  // pre-aged machine: the plan degrades to one shard
  const auto parallel = Campaign::run(OsVariant::kWin95, world.registry, opt);
  expect_same_result(legacy, parallel, "machine_setup");
}

}  // namespace
}  // namespace ballista::core
