// Adversarial robustness of the v2 wire codec, mirroring store_fuzz_test:
// take one valid frame of every message type, then feed the decoder every
// truncation and every single-bit corruption of each.  The decoder must
// return nullopt or a message whose re-encoding is byte-identical to the
// mutated input — never crash, never over-read (asan is the witness), never
// accept a frame it cannot reproduce.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rpc/channel.h"
#include "rpc/protocol.h"

namespace ballista::rpc {
namespace {

std::vector<Message> corpus() {
  std::vector<Message> frames;
  frames.push_back(Message{TestRequest{"GetThreadContext", 1234}});
  frames.push_back(Message{TestResult{"strncpy", 7, core::CaseCode::kAbort,
                                      "ACCESS_VIOLATION reading 0x0"}});
  frames.push_back(Message{RebootNotice{
      TestResult{"VirtualAlloc", 9, core::CaseCode::kCatastrophic,
                 "page fault in kernel context"}}});
  frames.push_back(Message{Shutdown{}});
  frames.push_back(Message{ShardRequest{"fclose", 128, 64}});

  ShardResult shard;
  shard.mut_name = "memcpy";
  shard.first = 40;
  shard.codes = {core::CaseCode::kPassWithError, core::CaseCode::kAbort,
                 core::CaseCode::kCatastrophic};
  shard.crashed = true;
  shard.detail = "delayed failure from corrupted shared arena";
  shard.counters[trace::EventKind::kSyscallEnter] = 17;
  shard.counters[trace::EventKind::kPanic] = 1;
  frames.push_back(Message{shard});

  Hello hello;
  hello.spec.variant = 3;
  hello.spec.cap = 40;
  hello.spec.seed = 0x8a11157a;
  hello.spec.has_only_api = 1;
  hello.spec.only_api = 2;
  hello.spec.has_group_filter = 1;
  hello.spec.group_mask = 0x15;
  frames.push_back(Message{hello});

  frames.push_back(Message{Attach{3, 12, 4096, {0, 2, 5, 11}}});
  frames.push_back(Message{Detach{3}});
  frames.push_back(Message{
      Error{ErrorCode::kSessionSealed, 3, "campaign already complete"}});

  // A streamed shard with the full outcome shape: multiple MuT partials,
  // per-case codes, a crash with detail/tuple text and a trace tail — the
  // richest (and most bounds-check-hungry) payload the wire carries.
  StreamedShard streamed;
  streamed.session_id = 3;
  streamed.outcome.shard_index = 5;
  streamed.outcome.executed_cases = 21;
  streamed.outcome.reboots = 2;
  streamed.outcome.partials.push_back({0, 0, {}});
  {
    auto& stats = streamed.outcome.partials.back().stats;
    stats.planned = 12;
    stats.executed = 12;
    stats.passes = 9;
    stats.aborts = 3;
    stats.case_codes.assign(12, core::CaseCode::kPassWithError);
    stats.event_counts[trace::EventKind::kSyscallEnter] = 24;
  }
  streamed.outcome.partials.push_back({1, 12, {}});
  {
    auto& stats = streamed.outcome.partials.back().stats;
    stats.planned = 12;
    stats.executed = 9;
    stats.catastrophic = true;
    stats.crash_case = 8;
    stats.crash_detail = "page fault in kernel context";
    stats.crash_tuple = "(NULL, -1)";
    stats.crash_reproducible_single = true;
    stats.event_counts[trace::EventKind::kPanic] = 1;
  }
  frames.push_back(Message{streamed});

  Complete complete;
  complete.session_id = 3;
  complete.total_cases = 4096;
  complete.reboots = 7;
  complete.counters[trace::EventKind::kSyscallEnter] = 8192;
  frames.push_back(Message{complete});

  EXPECT_EQ(frames.size(), std::variant_size_v<Message>);
  return frames;
}

std::string label(const Message& m) {
  return std::string(message_type_name(message_type(m)));
}

TEST(RpcFuzz, CorpusCoversEveryMessageTypeAndRoundTrips) {
  for (const Message& m : corpus()) {
    const Frame frame = encode(m);
    const auto decoded = decode(frame);
    ASSERT_TRUE(decoded.has_value()) << label(m);
    EXPECT_EQ(message_type(*decoded), message_type(m)) << label(m);
    EXPECT_EQ(encode(*decoded), frame) << label(m);
  }
}

TEST(RpcFuzz, EveryTruncationIsRejectedOrCanonical) {
  for (const Message& m : corpus()) {
    const Frame full = encode(m);
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      const Frame truncated(full.begin(),
                            full.begin() + static_cast<std::ptrdiff_t>(cut));
      const auto msg = decode(truncated);
      if (msg.has_value()) {
        EXPECT_EQ(encode(*msg), truncated)
            << label(m) << " truncated to " << cut << " bytes";
      }
    }
  }
}

TEST(RpcFuzz, EverySingleBitFlipIsRejectedOrCanonical) {
  for (const Message& m : corpus()) {
    const Frame full = encode(m);
    for (std::size_t byte = 0; byte < full.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        Frame flipped = full;
        flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
        const auto msg = decode(flipped);
        if (msg.has_value()) {
          EXPECT_EQ(encode(*msg), flipped)
              << label(m) << " bit " << bit << " of byte " << byte;
        }
      }
    }
  }
}

TEST(RpcFuzz, FrameTailGarbageIsRejected) {
  for (const Message& m : corpus()) {
    Frame padded = encode(m);
    padded.push_back(0x00);
    EXPECT_FALSE(decode(padded).has_value()) << label(m);
  }
}

}  // namespace
}  // namespace ballista::rpc
