// Tests for the fourteenth functional group — Sockets — and the pieces it
// rides on: per-variant registry shape (Winsock vs BSD flavors of the same
// bare names), default-plan exclusion, --groups token parsing edge cases,
// jobs=1-vs-4 bit identity on every variant, the NT-vs-Win9x-vs-Linux error
// model contrasts the group was built to exhibit, and the group-filtered
// store round trip.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "core/ballista.h"
#include "core/diff.h"
#include "store/store.h"
#include "tests/test_util.h"

namespace ballista {
namespace {

using core::ApiKind;
using core::Campaign;
using core::CampaignOptions;
using core::CampaignResult;
using core::FuncGroup;
using sim::OsVariant;
using testing::find_value;
using testing::shared_world;

constexpr std::uint32_t kSocketsBit = core::group_bit(FuncGroup::kSockets);

std::size_t socket_count(OsVariant v, ApiKind api) {
  std::size_t n = 0;
  for (const core::MuT* m : shared_world().registry.for_variant(v))
    if (m->group == FuncGroup::kSockets && m->api == api) ++n;
  return n;
}

TEST(SocketGroup, RegistryShapePerVariant) {
  const auto& reg = shared_world().registry;
  // 16 Winsock MuTs + 12 BSD MuTs share the group.
  EXPECT_EQ(reg.count_group(FuncGroup::kSockets), 28u);
  for (OsVariant v : {OsVariant::kWin95, OsVariant::kWin98,
                      OsVariant::kWin98SE, OsVariant::kWinNT4,
                      OsVariant::kWin2000})
    EXPECT_EQ(socket_count(v, ApiKind::kWin32Sys), 16u) << sim::variant_name(v);
  // The CE Winsock subset of the era lacked ioctlsocket/getsockname/
  // getpeername.
  EXPECT_EQ(socket_count(OsVariant::kWinCE, ApiKind::kWin32Sys), 13u);
  EXPECT_EQ(socket_count(OsVariant::kLinux, ApiKind::kPosixSys), 12u);
  EXPECT_EQ(socket_count(OsVariant::kLinux, ApiKind::kWin32Sys), 0u);
  EXPECT_EQ(socket_count(OsVariant::kWinNT4, ApiKind::kPosixSys), 0u);

  // Same bare name, two flavors: the variant-aware lookup tells them apart.
  const core::MuT* win = reg.find("socket", FuncGroup::kSockets,
                                  OsVariant::kWinNT4);
  const core::MuT* bsd = reg.find("socket", FuncGroup::kSockets,
                                  OsVariant::kLinux);
  ASSERT_NE(win, nullptr);
  ASSERT_NE(bsd, nullptr);
  EXPECT_NE(win, bsd);
  EXPECT_EQ(win->api, ApiKind::kWin32Sys);
  EXPECT_EQ(bsd->api, ApiKind::kPosixSys);

  // CE thunks the datagram sockaddr copies through the kernel: deferred
  // hazards, like the sync group's Interlocked rows.
  const core::MuT* st = reg.find("sendto", FuncGroup::kSockets,
                                 OsVariant::kWinCE);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->hazard_on(OsVariant::kWinCE), core::CrashStyle::kDeferred);
  EXPECT_EQ(st->hazard_on(OsVariant::kWinNT4), core::CrashStyle::kNone);
}

TEST(SocketGroup, GroupTableRow) {
  const auto* d = core::group_from_token("sockets");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->id, FuncGroup::kSockets);
  EXPECT_EQ(core::group_index(FuncGroup::kSockets), 13u);
  EXPECT_FALSE(d->in_default_campaign);
  EXPECT_FALSE(d->crash_default);
  EXPECT_FALSE(core::is_clib_group(FuncGroup::kSockets));
  EXPECT_EQ(core::group_name(FuncGroup::kSockets), "Sockets");
  EXPECT_EQ(core::kDefaultCampaignGroupMask & kSocketsBit, 0u);
}

TEST(SocketGroup, GroupTokenParsingEdgeCases) {
  std::string err;
  // Duplicate tokens collapse into the same bit.
  EXPECT_EQ(core::parse_group_list("sockets,sockets", &err), kSocketsBit);
  EXPECT_EQ(core::parse_group_list("sockets,sync,sockets", &err),
            kSocketsBit | core::group_bit(FuncGroup::kWin32Sync));
  // Empty list and empty tokens are rejected.
  EXPECT_EQ(core::parse_group_list("", &err), std::nullopt);
  EXPECT_EQ(core::parse_group_list("sockets,", &err), std::nullopt);
  EXPECT_EQ(core::parse_group_list(",sockets", &err), std::nullopt);
  // Unknown tokens are rejected with the token named in the diagnostic
  // (the CLI turns this into usage + exit 2).
  EXPECT_EQ(core::parse_group_list("bogus", &err), std::nullopt);
  EXPECT_NE(err.find("bogus"), std::string::npos);
  EXPECT_EQ(core::parse_group_list("sockets,bogus", &err), std::nullopt);
  // Spelling out the default set parses to exactly the default mask — which
  // the CLI then normalizes to "no filter" so the log is byte-identical to
  // a plain run.
  EXPECT_EQ(core::parse_group_list(
                "memory,filedir,io,process,environment,cchar,cstring,"
                "cmemory,cfileio,cstreamio,cmath,ctime",
                &err),
            core::kDefaultCampaignGroupMask);
  EXPECT_EQ(core::parse_group_list("all", &err), core::kEveryGroupMask);
}

TEST(SocketGroup, DefaultPlanExcludesSocketMuts) {
  core::PlanOptions opt;
  opt.cap = 24;
  for (OsVariant v : {OsVariant::kWinNT4, OsVariant::kLinux}) {
    const core::Plan plan = core::make_plan(v, shared_world().registry, opt);
    for (const core::MuT* m : plan.muts)
      EXPECT_NE(m->group, FuncGroup::kSockets) << m->name;
  }
  opt.group_mask = kSocketsBit;
  const core::Plan sp =
      core::make_plan(OsVariant::kWinNT4, shared_world().registry, opt);
  EXPECT_EQ(sp.muts.size(), 16u);
  const core::Plan lp =
      core::make_plan(OsVariant::kLinux, shared_world().registry, opt);
  EXPECT_EQ(lp.muts.size(), 12u);
}

TEST(SocketGroup, ParallelCampaignsAreBitIdenticalOnEveryVariant) {
  for (OsVariant v : sim::kAllVariants) {
    CampaignOptions seq, par;
    seq.cap = par.cap = 24;
    seq.group_mask = par.group_mask = kSocketsBit;
    par.jobs = 4;
    const auto a = Campaign::run(v, shared_world().registry, seq);
    const auto b = Campaign::run(v, shared_world().registry, par);
    ASSERT_EQ(a.stats.size(), b.stats.size()) << sim::variant_name(v);
    ASSERT_GT(a.stats.size(), 0u) << sim::variant_name(v);
    for (std::size_t i = 0; i < a.stats.size(); ++i) {
      EXPECT_EQ(a.stats[i].mut, b.stats[i].mut);
      EXPECT_EQ(a.stats[i].case_codes, b.stats[i].case_codes)
          << sim::variant_name(v) << " / " << a.stats[i].mut->name;
      EXPECT_EQ(a.stats[i].aborts, b.stats[i].aborts);
      EXPECT_EQ(a.stats[i].restarts, b.stats[i].restarts);
      EXPECT_EQ(a.stats[i].silent_candidates, b.stats[i].silent_candidates);
    }
    EXPECT_EQ(a.reboots, b.reboots) << sim::variant_name(v);
    EXPECT_EQ(a.total_cases, b.total_cases) << sim::variant_name(v);
  }
}

/// Runs one case of a sockets-group MuT, resolving the Winsock/BSD flavor
/// through the variant.
core::CaseResult run_socket_case(OsVariant v, std::string_view name,
                                 const std::vector<std::string>& value_names,
                                 sim::Machine* machine) {
  const core::MuT* mut =
      shared_world().registry.find(name, FuncGroup::kSockets, v);
  EXPECT_NE(mut, nullptr) << name;
  std::vector<const core::TestValue*> tuple;
  for (std::size_t i = 0; i < value_names.size(); ++i)
    tuple.push_back(find_value(*mut->params[i], value_names[i]));
  core::Executor executor(*machine);
  return executor.run_case(*mut, tuple);
}

TEST(SocketGroup, ClosedSocketSplitsThePersonalities) {
  // shutdown() on a closed socket handle: NT reports WSAENOTSOCK (an error
  // return), Win95's stub reports success having done nothing (Silent
  // candidate), Linux reports EBADF.
  sim::Machine nt(OsVariant::kWinNT4);
  const auto rn = run_socket_case(OsVariant::kWinNT4, "shutdown",
                                  {"hs_closed", "how_both"}, &nt);
  EXPECT_EQ(rn.outcome, core::Outcome::kPass);
  EXPECT_FALSE(rn.success_no_error);

  sim::Machine w95(OsVariant::kWin95);
  const auto r9 = run_socket_case(OsVariant::kWin95, "shutdown",
                                  {"hs_closed", "how_both"}, &w95);
  EXPECT_EQ(r9.outcome, core::Outcome::kPass);
  EXPECT_TRUE(r9.success_no_error);

  sim::Machine lx(OsVariant::kLinux);
  const auto rl = run_socket_case(OsVariant::kLinux, "shutdown",
                                  {"hs_closed", "how_both"}, &lx);
  EXPECT_EQ(rl.outcome, core::Outcome::kPass);
  EXPECT_FALSE(rl.success_no_error);
}

TEST(SocketGroup, KernelSockaddrAbortsNtButIsReportedOnLinux) {
  // connect() with a kernel-space sockaddr*: the NT kernel copy-in raises
  // (Abort), Linux's copy_from_user reports EFAULT, the Win98 stub layer
  // swallows it and reports success.
  sim::Machine nt(OsVariant::kWinNT4);
  const auto rn = run_socket_case(OsVariant::kWinNT4, "connect",
                                  {"hs_tcp_fresh", "sa_kernel", "sal_exact16"},
                                  &nt);
  EXPECT_EQ(rn.outcome, core::Outcome::kAbort);

  sim::Machine lx(OsVariant::kLinux);
  const auto rl = run_socket_case(OsVariant::kLinux, "connect",
                                  {"hs_tcp_fresh", "sa_kernel", "sal_exact16"},
                                  &lx);
  EXPECT_EQ(rl.outcome, core::Outcome::kPass);
  EXPECT_FALSE(rl.success_no_error);

  sim::Machine w98(OsVariant::kWin98);
  const auto r9 = run_socket_case(OsVariant::kWin98, "connect",
                                  {"hs_tcp_fresh", "sa_kernel", "sal_exact16"},
                                  &w98);
  EXPECT_EQ(r9.outcome, core::Outcome::kPass);
  EXPECT_TRUE(r9.success_no_error);
}

TEST(SocketGroup, ConnectToLiveListenerSucceeds) {
  sim::Machine nt(OsVariant::kWinNT4);
  const auto r = run_socket_case(
      OsVariant::kWinNT4, "connect",
      {"hs_tcp_fresh", "sa_listener_live", "sal_exact16"}, &nt);
  EXPECT_EQ(r.outcome, core::Outcome::kPass);
  EXPECT_FALSE(r.wrong_error);
}

TEST(SocketGroup, BlockingRecvOnSilentPeerHangsTheTask) {
  // recv() on a connected socket whose peer never sends: nothing can ever
  // arrive in a single-process simulation, so the watchdog's Restart is the
  // honest outcome — the paper's hung-task failures.
  sim::Machine nt(OsVariant::kWinNT4);
  const auto r = run_socket_case(
      OsVariant::kWinNT4, "recv",
      {"hs_tcp_connected", "buf_page", "size_16", "sf_0"}, &nt);
  EXPECT_EQ(r.outcome, core::Outcome::kRestart);

  sim::Machine lx(OsVariant::kLinux);
  const auto rl = run_socket_case(
      OsVariant::kLinux, "recv",
      {"hs_tcp_connected", "buf_page", "size_16", "sf_0"}, &lx);
  EXPECT_EQ(rl.outcome, core::Outcome::kRestart);
}

TEST(SocketGroup, RecvTimeoutBurnsTicksInsteadOfHanging) {
  // SO_RCVTIMEO turns the would-be hang into a deterministic tick burn plus
  // an error return: the hs_tcp_timeout pool value arms recv_timeout_ticks,
  // so a blocking recv advances the simulated clock and reports
  // WSAETIMEDOUT instead of tripping the watchdog.
  sim::Machine nt(OsVariant::kWinNT4);
  const std::uint64_t t0 = nt.ticks();
  const auto r = run_socket_case(
      OsVariant::kWinNT4, "recv",
      {"hs_tcp_timeout", "buf_page", "size_16", "sf_0"}, &nt);
  EXPECT_EQ(r.outcome, core::Outcome::kPass);
  EXPECT_FALSE(r.success_no_error);  // WSAETIMEDOUT reported
  EXPECT_GE(nt.ticks(), t0 + 500);  // the timeout was paid in sim ticks
}

TEST(SocketGroup, StoreRoundTripPreservesGroupFilter) {
  const std::string path = ::testing::TempDir() + "ballista_sockstore." +
                           std::to_string(::getpid()) + ".blog";
  CampaignOptions opt;
  opt.cap = 24;
  opt.group_mask = kSocketsBit;
  const store::StoreRun written = store::run_with_store(
      OsVariant::kWinNT4, shared_world().registry, opt, path,
      /*resume=*/false);
  ASSERT_TRUE(written.ok) << written.error;

  const store::StoreContents contents = store::read_store_file(path);
  ASSERT_EQ(contents.status, store::ReadStatus::kOk);
  EXPECT_EQ(contents.header.has_group_filter, 1);
  EXPECT_EQ(contents.header.group_mask, kSocketsBit);

  const store::StoreRun loaded =
      store::load_result(shared_world().registry, path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  const core::CampaignDiff d =
      core::diff_campaigns(written.result, loaded.result);
  EXPECT_TRUE(d.identical());
  std::remove(path.c_str());
}

TEST(SocketGroup, CampaignShowsThePaperContrastShape) {
  // Group-level sanity on the headline numbers: NT4 aborts on unprobed
  // pointer copies where Linux reports EFAULT (no aborts), and the Win9x
  // stub layer manufactures Silent candidates NT does not have.
  CampaignOptions opt;
  opt.cap = 24;
  opt.group_mask = kSocketsBit;
  const auto nt = Campaign::run(OsVariant::kWinNT4, shared_world().registry,
                                opt);
  const auto lx = Campaign::run(OsVariant::kLinux, shared_world().registry,
                                opt);
  const auto w95 = Campaign::run(OsVariant::kWin95, shared_world().registry,
                                 opt);
  auto aborts = [](const CampaignResult& r) {
    std::size_t n = 0;
    for (const auto& s : r.stats) n += s.aborts;
    return n;
  };
  auto silents = [](const CampaignResult& r) {
    std::size_t n = 0;
    for (const auto& s : r.stats) n += s.silent_candidates;
    return n;
  };
  EXPECT_GT(aborts(nt), 0u);
  EXPECT_EQ(aborts(lx), 0u);
  EXPECT_GT(silents(w95), silents(nt));
  // No socket MuT is Catastrophic on the protected-kernel variants.
  for (const auto& s : nt.stats) EXPECT_FALSE(s.catastrophic) << s.mut->name;
  for (const auto& s : lx.stats) EXPECT_FALSE(s.catastrophic) << s.mut->name;
}

}  // namespace
}  // namespace ballista
