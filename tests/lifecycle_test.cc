// Tests for the checkpoint/restore machine-state lifecycle (DESIGN.md §8).
//
// The central contract: a machine restored between cases is observationally
// identical to a freshly booted one, no matter how much state the previous
// case dirtied — so campaign results can never depend on case ordering
// beyond the deliberate shared-arena channel.  The property sweep below
// differences three executions of every catalog case: on a long-lived
// machine soaked in dirt between cases (the production fast path), on a
// machine under ResetPolicy::kAlwaysRebuild (the pre-lifecycle cost model),
// and on a throwaway fresh machine (ground truth).
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ballista {
namespace {

using core::CaseResult;
using core::Outcome;
using sim::OsVariant;
using sim::ResetPolicy;
using sim::RestoreLevel;
using testing::shared_world;

void expect_same_result(const CaseResult& got, const CaseResult& want,
                        const std::string& label) {
  EXPECT_EQ(got.outcome, want.outcome) << label;
  EXPECT_EQ(got.success_no_error, want.success_no_error) << label;
  EXPECT_EQ(got.wrong_error, want.wrong_error) << label;
  EXPECT_EQ(got.any_exceptional, want.any_exceptional) << label;
  EXPECT_EQ(got.fault, want.fault) << label;
  EXPECT_EQ(got.panic, want.panic) << label;
  EXPECT_EQ(got.detail, want.detail) << label;
  EXPECT_EQ(got.events, want.events) << label;
  // Tails are compared with ticks rebased to the window start: absolute tick
  // stamps encode the machine's whole prior history (TraceEvent::operator==
  // includes them), but the causal window's *shape* — kinds, payloads,
  // relative timing — is the schedule-invariant part.
  auto rebase = [](std::vector<trace::TraceEvent> tail) {
    if (!tail.empty()) {
      const std::uint64_t t0 = tail.front().ticks;
      for (auto& e : tail) e.ticks -= t0;
    }
    return tail;
  };
  EXPECT_EQ(rebase(got.trace_tail), rebase(want.trace_tail)) << label;
}

/// Dirties every lifecycle-managed store short of leaving the machine
/// crashed: accumulated arena wear (settled by the kReboot a real campaign
/// would issue), heavy disk churn including deleting fixture files, and a
/// task that leaks handles, mappings, environment and cwd edits into the
/// process pool.
void make_mess(sim::Machine& m) {
  // Arena wear + the reboot that settles it.  The fuse must not stay armed
  // into the measured case (its burn events would land in that case's
  // counter delta), which is exactly how the campaign engine behaves: wear
  // is always followed by a reboot before the next case.
  m.age_arena(1000);
  m.restore(RestoreLevel::kReboot);

  auto& fs = m.fs();
  const sim::ParsedPath cwd = sim::FileSystem::root_path();
  const auto p = [&](std::string_view s) { return fs.parse(s, cwd); };
  fs.create_dir(p("/tmp/mess"));
  if (auto f = fs.create_file(p("/tmp/mess/a.txt"), false, true))
    f->data().assign(512, 'x');
  fs.remove_file(p("/tmp/fixture.dat"));
  if (auto ro = fs.resolve(p("/tmp/readonly.dat"))) ro->read_only = false;
  fs.rename(p("/tmp/mess"), p("/tmp/mess2"));

  auto proc = m.acquire_process();
  if (auto leak = fs.create_file(p("/tmp/leak.dat"), false, true))
    proc->handles().insert(std::make_shared<sim::FileObject>(
        leak, sim::FileObject::kAccessRead, false));
  proc->mem().map(0x5000'0000, 8 * 4096, sim::kPermRW);
  proc->env()["MESS"] = "1";
  proc->cwd().components = {"tmp", "mess2"};
  proc->set_last_error(5);
  m.release_process(std::move(proc));
}

/// Post-case settling, mirroring the campaign loop: a dead or corrupted
/// machine is power-cycled before the next case.
void settle(sim::Machine& m) {
  if (m.crashed() || m.arena().corruption() > 0)
    m.restore(RestoreLevel::kReboot);
}

class LifecycleSweep : public ::testing::TestWithParam<OsVariant> {};

TEST_P(LifecycleSweep, DirtiedThenRestoredMachineMatchesFreshMachine) {
  const OsVariant v = GetParam();
  const auto& world = shared_world();

  sim::Machine soaked(v);  // ResetPolicy::kIncremental — the production path
  sim::Machine legacy(v);
  legacy.set_reset_policy(ResetPolicy::kAlwaysRebuild);
  core::Executor soaked_ex(soaked);
  core::Executor legacy_ex(legacy);

  for (const core::MuT* mut : world.registry.for_variant(v)) {
    core::TupleGenerator gen(*mut, /*cap=*/4);
    for (std::uint64_t i = 0; i < gen.count(); ++i) {
      make_mess(soaked);
      make_mess(legacy);
      const auto tuple = gen.tuple(i);

      const auto index = static_cast<std::int64_t>(i);
      const CaseResult got = soaked_ex.run_case(*mut, tuple, index);
      const CaseResult alt = legacy_ex.run_case(*mut, tuple, index);

      sim::Machine pristine(v);
      core::Executor pristine_ex(pristine);
      const CaseResult want = pristine_ex.run_case(*mut, tuple, index);

      const std::string label = mut->name + " case " + std::to_string(i);
      expect_same_result(got, want, label + " (incremental restore)");
      expect_same_result(alt, want, label + " (always-rebuild policy)");
      if (::testing::Test::HasFailure()) return;  // one repro beats thousands

      settle(soaked);
      settle(legacy);
    }
  }
  // The sweep must actually have exercised the fast paths it certifies.
  EXPECT_GT(soaked.processes_recycled(), 0u);
  EXPECT_GT(soaked.fs().fixture_rebuilds(), 0u);       // mess forces rebuilds
  EXPECT_GT(soaked.fs().fixture_fast_restores(), 0u);  // run_case verify pass
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, LifecycleSweep,
    ::testing::ValuesIn(sim::kAllVariants.begin(), sim::kAllVariants.end()),
    [](const ::testing::TestParamInfo<OsVariant>& info) {
      std::string name{sim::variant_name(info.param)};
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

// --- the double-rebuild regression ------------------------------------------
//
// Before the lifecycle unification, a crash was followed by two full fixture
// rebuilds: Machine::reboot() rebuilt the disk, then the next run_case
// unconditionally rebuilt it again.  The checkpoint image makes the second
// pass a verify: this test pins the exact rebuild count across the
// crash -> reboot -> next-case sequence.

struct MiniMut {
  explicit MiniMut(core::ApiImpl impl) {
    mut.name = "mini";
    mut.api = core::ApiKind::kCLib;
    mut.group = core::FuncGroup::kCString;
    mut.impl = std::move(impl);
    mut.variant_mask = core::kMaskEverything;
  }
  core::MuT mut;
};

TEST(Lifecycle, RebootedFixtureIsNotRebuiltAgainByTheNextCase) {
  sim::Machine m(OsVariant::kWin98);
  core::Executor ex(m);
  MiniMut benign([](core::CallContext&) { return core::ok(0); });
  MiniMut killer([](core::CallContext& c) -> core::CallOutcome {
    // Dirty the disk, then die in the kernel — the worst case for cleanup.
    auto& fs = c.machine().fs();
    fs.create_file(fs.parse("/tmp/wreck.dat", sim::FileSystem::root_path()),
                   false, true);
    c.machine().panic(sim::PanicKind::kInduced);
  });

  // A clean boot fixture verifies; nothing has ever rebuilt it.
  ASSERT_EQ(ex.run_case(benign.mut, {}).outcome, Outcome::kPass);
  const std::uint64_t rebuilds0 = m.fs().fixture_rebuilds();
  EXPECT_EQ(rebuilds0, 0u);

  const CaseResult crash = ex.run_case(killer.mut, {});
  ASSERT_EQ(crash.outcome, Outcome::kCatastrophic);
  ASSERT_TRUE(m.crashed());

  // The reboot settles the wrecked disk: exactly one rebuild...
  m.restore(RestoreLevel::kReboot);
  EXPECT_EQ(m.fs().fixture_rebuilds(), rebuilds0 + 1);

  // ...and the next case's kCaseReset verifies instead of rebuilding again.
  const std::uint64_t fast0 = m.fs().fixture_fast_restores();
  ASSERT_EQ(ex.run_case(benign.mut, {}).outcome, Outcome::kPass);
  EXPECT_EQ(m.fs().fixture_rebuilds(), rebuilds0 + 1);
  EXPECT_EQ(m.fs().fixture_fast_restores(), fast0 + 1);
}

// --- process pool ------------------------------------------------------------

TEST(Lifecycle, RecycledProcessIsObservationallyFresh) {
  sim::Machine m(OsVariant::kWinNT4);
  sim::Machine reference(OsVariant::kWinNT4);

  auto first = m.acquire_process();
  const std::uint64_t pid0 = first->pid();
  // Dirty everything a case can reach.
  first->handles().insert(std::make_shared<sim::PipeObject>());
  first->mem().map(0x6000'0000, 4096, sim::kPermRW);
  first->env().clear();
  first->cwd().components = {"somewhere", "else"};
  first->set_last_error(87);
  first->set_errno(22);
  m.release_process(std::move(first));

  auto recycled = m.acquire_process();
  ASSERT_EQ(m.processes_recycled(), 1u);
  auto fresh = reference.acquire_process();

  // Same pid sequence a fresh-construction machine would produce.
  EXPECT_EQ(recycled->pid(), pid0 + 1);
  // Identical observable state: std handles, table shape, env, cwd, errors.
  EXPECT_EQ(recycled->std_in, fresh->std_in);
  EXPECT_EQ(recycled->std_out, fresh->std_out);
  EXPECT_EQ(recycled->std_err, fresh->std_err);
  EXPECT_EQ(recycled->handles().size(), fresh->handles().size());
  EXPECT_EQ(recycled->handles().insert(std::make_shared<sim::PipeObject>()),
            fresh->handles().insert(std::make_shared<sim::PipeObject>()));
  EXPECT_EQ(recycled->env(), fresh->env());
  EXPECT_EQ(recycled->cwd().components, fresh->cwd().components);
  EXPECT_EQ(recycled->last_error(), 0u);
  EXPECT_EQ(recycled->err_no(), 0);
  EXPECT_EQ(recycled->main_thread()->tid(), recycled->pid() * 1000 + 1);
  // The dirty mapping is gone; the stack is back.
  EXPECT_FALSE(recycled->mem().is_mapped(0x6000'0000));
}

TEST(Lifecycle, AlwaysRebuildPolicyDisablesPooling) {
  sim::Machine m(OsVariant::kWinNT4);
  m.set_reset_policy(ResetPolicy::kAlwaysRebuild);
  m.release_process(m.acquire_process());
  m.release_process(m.acquire_process());
  EXPECT_EQ(m.processes_recycled(), 0u);
  EXPECT_EQ(m.processes_built(), 2u);
}

TEST(Lifecycle, FullResetRestartsThePidSequence) {
  sim::Machine m(OsVariant::kLinux);
  sim::Machine fresh(OsVariant::kLinux);
  m.release_process(m.acquire_process());
  m.release_process(m.acquire_process());
  m.advance_ticks(999);
  m.restore(RestoreLevel::kFullReset);
  EXPECT_EQ(m.ticks(), fresh.ticks());
  // The pool survives a full reset, but recycling restarts the pid sequence,
  // so a checked-out pool machine is indistinguishable from a new one.
  EXPECT_EQ(m.acquire_process()->pid(), fresh.acquire_process()->pid());
}

}  // namespace
}  // namespace ballista
