// Unit tests for the in-memory filesystem shared by all API personalities.
#include <gtest/gtest.h>

#include "sim/filesystem.h"

namespace ballista::sim {
namespace {

class FsTest : public ::testing::Test {
 protected:
  ParsedPath p(std::string_view s) { return fs.parse(s, cwd); }
  FileSystem fs;
  ParsedPath cwd = FileSystem::root_path();
};

TEST_F(FsTest, FixtureExistsAtBoot) {
  EXPECT_NE(fs.resolve(p("/tmp/fixture.dat")), nullptr);
  auto ro = fs.resolve(p("/tmp/readonly.dat"));
  ASSERT_NE(ro, nullptr);
  EXPECT_TRUE(ro->read_only);
  EXPECT_FALSE(fs.resolve(p("/tmp/fixture.dat"))->data().empty());
}

TEST_F(FsTest, ParseHandlesBothSeparatorsAndDrives) {
  EXPECT_EQ(FileSystem::to_string(p("C:\\tmp\\fixture.dat")),
            "/tmp/fixture.dat");
  EXPECT_EQ(FileSystem::to_string(p("/tmp//fixture.dat")),
            "/tmp/fixture.dat");
  EXPECT_EQ(FileSystem::to_string(p("\\tmp\\a\\..\\b")), "/tmp/b");
  EXPECT_EQ(FileSystem::to_string(p("/")), "/");
}

TEST_F(FsTest, RelativePathsUseCwd) {
  cwd = p("/tmp");
  EXPECT_NE(fs.resolve(p("fixture.dat")), nullptr);
  EXPECT_EQ(FileSystem::to_string(p("./sub/../fixture.dat")),
            "/tmp/fixture.dat");
}

TEST_F(FsTest, DotDotAboveRootClamps) {
  EXPECT_EQ(FileSystem::to_string(p("/../../tmp")), "/tmp");
}

TEST_F(FsTest, EmptyPathIsInvalid) {
  EXPECT_FALSE(p("").valid);
  EXPECT_EQ(fs.resolve(p("")), nullptr);
}

TEST_F(FsTest, CreateFileVariants) {
  EXPECT_NE(fs.create_file(p("/tmp/new.dat"), true, false), nullptr);
  // fail_if_exists
  EXPECT_EQ(fs.create_file(p("/tmp/new.dat"), true, false), nullptr);
  // reuse without truncation
  auto n = fs.create_file(p("/tmp/new.dat"), false, false);
  ASSERT_NE(n, nullptr);
  n->data().assign({1, 2, 3});
  auto again = fs.create_file(p("/tmp/new.dat"), false, false);
  EXPECT_EQ(again->data().size(), 3u);
  // truncate_existing
  auto trunc = fs.create_file(p("/tmp/new.dat"), false, true);
  EXPECT_TRUE(trunc->data().empty());
}

TEST_F(FsTest, CreateFileInMissingDirFails) {
  EXPECT_EQ(fs.create_file(p("/nowhere/file"), false, false), nullptr);
}

TEST_F(FsTest, ReadOnlyFilesResistModification) {
  EXPECT_EQ(fs.create_file(p("/tmp/readonly.dat"), false, true), nullptr);
  EXPECT_FALSE(fs.remove_file(p("/tmp/readonly.dat")));
}

TEST_F(FsTest, DirectoryLifecycle) {
  EXPECT_NE(fs.create_dir(p("/tmp/sub")), nullptr);
  EXPECT_EQ(fs.create_dir(p("/tmp/sub")), nullptr);  // exists
  EXPECT_NE(fs.create_file(p("/tmp/sub/f"), true, false), nullptr);
  EXPECT_FALSE(fs.remove_dir(p("/tmp/sub")));  // not empty
  EXPECT_TRUE(fs.remove_file(p("/tmp/sub/f")));
  EXPECT_TRUE(fs.remove_dir(p("/tmp/sub")));
  EXPECT_EQ(fs.resolve(p("/tmp/sub")), nullptr);
}

TEST_F(FsTest, RemoveDirRejectsFiles) {
  EXPECT_FALSE(fs.remove_dir(p("/tmp/fixture.dat")));
  EXPECT_FALSE(fs.remove_file(p("/tmp")));
}

TEST_F(FsTest, RenameMovesNodes) {
  EXPECT_TRUE(fs.rename(p("/tmp/fixture.dat"), p("/tmp/moved.dat")));
  EXPECT_EQ(fs.resolve(p("/tmp/fixture.dat")), nullptr);
  EXPECT_NE(fs.resolve(p("/tmp/moved.dat")), nullptr);
  // destination exists -> refused
  EXPECT_FALSE(fs.rename(p("/tmp/moved.dat"), p("/tmp/readonly.dat")));
  // missing source -> refused
  EXPECT_FALSE(fs.rename(p("/tmp/ghost"), p("/tmp/x")));
}

TEST_F(FsTest, RenameRejectsMovingADirectoryIntoItsOwnSubtree) {
  // rename("/a", "/a/b") would make the directory its own child: a shared_ptr
  // cycle unreachable from the root (caught by the asan preset's leak check).
  ASSERT_NE(fs.create_dir(p("/tmp/a")), nullptr);
  EXPECT_FALSE(fs.rename(p("/tmp/a"), p("/tmp/a/b")));
  EXPECT_FALSE(fs.rename(p("/tmp"), p("/tmp/a/deep")));
  EXPECT_FALSE(fs.rename(p("/tmp/a"), p("/tmp/a")));  // onto itself
  // the source tree is untouched by a refused rename
  EXPECT_NE(fs.resolve(p("/tmp/a")), nullptr);
  // a sibling move still works
  EXPECT_TRUE(fs.rename(p("/tmp/a"), p("/tmp/b")));
}

TEST_F(FsTest, RestoreFixtureRebuildsCanonicalTree) {
  fs.create_file(p("/tmp/junk"), true, false);
  fs.resolve(p("/tmp/fixture.dat"))->data().clear();
  EXPECT_TRUE(fs.restore_fixture());  // dirtied -> full rebuild
  EXPECT_EQ(fs.resolve(p("/tmp/junk")), nullptr);
  EXPECT_FALSE(fs.resolve(p("/tmp/fixture.dat"))->data().empty());
}

TEST_F(FsTest, RestoreFixtureIsFreeWhenClean) {
  // A clean tree verifies against the checkpoint image instead of rebuilding:
  // node identity survives, so open handles keep referencing live nodes.
  auto before = fs.resolve(p("/tmp/fixture.dat"));
  const auto rebuilds = fs.fixture_rebuilds();
  EXPECT_FALSE(fs.restore_fixture());
  EXPECT_EQ(fs.fixture_rebuilds(), rebuilds);
  EXPECT_GE(fs.fixture_fast_restores(), 1u);
  EXPECT_EQ(fs.resolve(p("/tmp/fixture.dat")), before);
}

TEST_F(FsTest, RestoreFixtureCatchesMetadataOnlyDamage) {
  // Dirty-bit schemes miss plain-field writes; the verify pass must not.
  fs.resolve(p("/tmp/readonly.dat"))->read_only = false;
  EXPECT_TRUE(fs.restore_fixture());
  EXPECT_TRUE(fs.resolve(p("/tmp/readonly.dat"))->read_only);
}

TEST_F(FsTest, ResetFixtureRestoresRootMetadata) {
  // chmod("/", 0555)-style damage must not outlive the fixture reset: the
  // root node object persists across resets, so a leaked read_only flag
  // would make later test cases (access, create) depend on what ran before
  // them — and campaign results depend on shard scheduling.
  fs.root()->read_only = true;
  fs.root()->hidden = true;
  EXPECT_TRUE(fs.restore_fixture());
  EXPECT_FALSE(fs.root()->read_only);
  EXPECT_FALSE(fs.root()->hidden);
}

TEST_F(FsTest, UnlinkedNodeSurvivesThroughSharedPtr) {
  auto node = fs.resolve(p("/tmp/fixture.dat"));
  ASSERT_TRUE(fs.remove_file(p("/tmp/fixture.dat")));
  EXPECT_EQ(node->nlink, 0);
  node->data().push_back('x');  // still usable via the open reference
}

}  // namespace
}  // namespace ballista::sim
