// Property-style sweeps over the full catalog: every MuT on every variant it
// supports must classify cleanly (no host exceptions, no unexpected machine
// states), value factories must be re-runnable, and crashes must be confined
// to the personalities that own a shared arena.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ballista {
namespace {

using core::Outcome;
using sim::OsVariant;
using testing::shared_world;

class VariantSweep : public ::testing::TestWithParam<OsVariant> {};

TEST_P(VariantSweep, EveryMutRunsItsFirstCasesCleanly) {
  const OsVariant v = GetParam();
  const auto& world = shared_world();
  sim::Machine machine(v);
  core::Executor executor(machine);
  for (const core::MuT* mut : world.registry.for_variant(v)) {
    core::TupleGenerator gen(*mut, /*cap=*/24);
    for (std::uint64_t i = 0; i < gen.count(); ++i) {
      if (machine.crashed()) machine.reboot();
      const auto tuple = gen.tuple(i);
      core::CaseResult r;
      // A host-level exception escaping run_case is a harness bug.
      ASSERT_NO_THROW(r = executor.run_case(*mut, tuple))
          << mut->name << " case " << i;
      if (r.outcome == Outcome::kCatastrophic) {
        // Only arena personalities can lose the machine.
        EXPECT_TRUE(machine.personality().has_shared_arena) << mut->name;
        machine.reboot();
      }
    }
  }
}

TEST_P(VariantSweep, OutcomeCountsAreConsistentPerMut) {
  const OsVariant v = GetParam();
  core::CampaignOptions opt;
  opt.cap = 60;
  const auto result = core::Campaign::run(v, shared_world().registry, opt);
  for (const auto& s : result.stats) {
    const std::uint64_t catastrophic_cases = static_cast<std::uint64_t>(
        std::count(s.case_codes.begin(), s.case_codes.end(),
                   core::CaseCode::kCatastrophic));
    EXPECT_EQ(s.passes + s.aborts + s.restarts + catastrophic_cases,
              s.executed)
        << s.mut->name;
    EXPECT_LE(s.executed, s.planned) << s.mut->name;
    EXPECT_EQ(s.case_codes.size(), s.executed) << s.mut->name;
    EXPECT_LE(s.silent_candidates, s.passes) << s.mut->name;
  }
}

TEST_P(VariantSweep, NonArenaVariantsNeverCrash) {
  const OsVariant v = GetParam();
  if (sim::personality_for(v).has_shared_arena) GTEST_SKIP();
  core::CampaignOptions opt;
  opt.cap = 60;
  const auto result = core::Campaign::run(v, shared_world().registry, opt);
  EXPECT_EQ(result.reboots, 0);
  for (const auto& s : result.stats)
    EXPECT_FALSE(s.catastrophic) << s.mut->name;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VariantSweep,
    ::testing::ValuesIn(sim::kAllVariants.begin(), sim::kAllVariants.end()),
    [](const ::testing::TestParamInfo<OsVariant>& info) {
      std::string name{sim::variant_name(info.param)};
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(ValueFactories, AreRepeatableWithinOneTask) {
  const auto& world = shared_world();
  sim::Machine machine(OsVariant::kWinNT4);
  auto proc = machine.create_process();
  core::ValueCtx vctx{machine, *proc};
  for (const auto& type : world.types.types()) {
    for (const core::TestValue* v : type->values()) {
      ASSERT_NO_THROW({
        (void)v->make(vctx);
        (void)v->make(vctx);
      }) << type->name()
         << "::" << v->name;
    }
  }
}

TEST(ValueFactories, LinuxSideTypesAlsoMaterialize) {
  const auto& world = shared_world();
  sim::Machine machine(OsVariant::kLinux);
  auto proc = machine.create_process();
  core::ValueCtx vctx{machine, *proc};
  for (const auto& type : world.types.types()) {
    for (const core::TestValue* v : type->values()) {
      ASSERT_NO_THROW((void)v->make(vctx))
          << type->name() << "::" << v->name;
    }
  }
}

TEST(TypePools, EveryTypeHasBothKindsWhereExpected) {
  const auto& world = shared_world();
  std::size_t exceptional = 0, benign = 0;
  for (const auto& type : world.types.types()) {
    EXPECT_GT(type->value_count(), 0u) << type->name();
    for (const core::TestValue* v : type->values())
      (v->exceptional ? exceptional : benign) += 1;
  }
  // Paper §2: pools contain "exceptional as well as non-exceptional cases".
  EXPECT_GT(exceptional, 50u);
  EXPECT_GT(benign, 80u);
}

TEST(TypePools, SizesAreInThePaperBallpark) {
  const auto& world = shared_world();
  // Dozens of types, hundreds of values (scaled-down from 43 types / 1073
  // values; DESIGN.md documents the scaling).
  EXPECT_GE(world.types.type_count(), 30u);
  EXPECT_GE(world.types.total_values(), 250u);
}

TEST(Isolation, CrashOnOneMachineDoesNotLeakToAnother) {
  const auto& world = shared_world();
  sim::Machine a(OsVariant::kWin98);
  sim::Machine b(OsVariant::kWin98);
  const auto r = testing::run_named_case(world, OsVariant::kWin98,
                                         "GetThreadContext",
                                         {"h_thread_pseudo", "buf_null"}, &a);
  EXPECT_EQ(r.outcome, Outcome::kCatastrophic);
  EXPECT_TRUE(a.crashed());
  EXPECT_FALSE(b.crashed());
  EXPECT_EQ(b.arena().corruption(), 0);
}

TEST(Isolation, HandleAllocationsDoNotAccumulateAcrossCases) {
  const auto& world = shared_world();
  sim::Machine m(OsVariant::kWinNT4);
  // Run the same constructor-heavy case repeatedly; each case gets a fresh
  // task, so handle tables cannot grow without bound.
  for (int i = 0; i < 5; ++i) {
    const auto r = testing::run_named_case(
        world, OsVariant::kWinNT4, "CloseHandle", {"h_file_valid"}, &m);
    EXPECT_EQ(r.outcome, Outcome::kPass);
  }
}

}  // namespace
}  // namespace ballista
