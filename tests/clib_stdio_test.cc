// Tests for C stdio across the three CRT personalities — the paper's
// seventeen-functions-one-bad-FILE* Windows CE catastrophe, the MSVC _iob
// range check, and glibc's trusting pointer chase.
#include <gtest/gtest.h>

#include "clib/crt.h"
#include "tests/test_util.h"

namespace ballista::clib {
namespace {

using ballista::testing::run_named_case;
using ballista::testing::shared_world;
using core::Outcome;
using sim::OsVariant;

TEST(Fopen, OpensFixtureEverywhere) {
  const auto& w = shared_world();
  for (OsVariant v : {OsVariant::kLinux, OsVariant::kWinNT4,
                      OsVariant::kWin95, OsVariant::kWinCE}) {
    sim::Machine m(v);
    const auto r =
        run_named_case(w, v, "fopen", {"path_fixture", "mode_r"}, &m);
    EXPECT_EQ(r.outcome, Outcome::kPass) << sim::variant_name(v);
    EXPECT_TRUE(r.success_no_error);
  }
}

TEST(Fopen, MissingFileReportsError) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  const auto r = run_named_case(w, OsVariant::kLinux, "fopen",
                                {"path_missing", "mode_r"}, &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_FALSE(r.success_no_error);  // ENOENT reported
}

TEST(Fopen, BogusModeReportsError) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinNT4);
  const auto r = run_named_case(w, OsVariant::kWinNT4, "fopen",
                                {"path_fixture", "mode_bogus"}, &m);
  EXPECT_FALSE(r.success_no_error);
}

TEST(Fopen, WriteModeOnReadOnlyFileReportsError) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  const auto r = run_named_case(w, OsVariant::kLinux, "fopen",
                                {"path_readonly", "mode_w"}, &m);
  EXPECT_FALSE(r.success_no_error);
}

struct BadFileCase {
  const char* value;
  Outcome glibc;
  Outcome msvcrt;
  Outcome ce;
};

class BadFilePointer : public ::testing::TestWithParam<BadFileCase> {};

TEST_P(BadFilePointer, EachCrtHandlesItsWay) {
  const auto& w = shared_world();
  const BadFileCase& c = GetParam();
  {
    sim::Machine m(OsVariant::kLinux);
    EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "fclose", {c.value}, &m)
                  .outcome,
              c.glibc)
        << "glibc " << c.value;
  }
  {
    sim::Machine m(OsVariant::kWinNT4);
    EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "fclose", {c.value}, &m)
                  .outcome,
              c.msvcrt)
        << "msvcrt " << c.value;
  }
  {
    sim::Machine m(OsVariant::kWinCE);
    EXPECT_EQ(
        run_named_case(w, OsVariant::kWinCE, "fclose", {c.value}, &m).outcome,
        c.ce)
        << "ce " << c.value;
    if (m.crashed()) m.reboot();
  }
}

INSTANTIATE_TEST_SUITE_P(
    PointerKinds, BadFilePointer,
    ::testing::Values(
        // The paper's root cause: a string buffer cast to FILE*.
        BadFileCase{"file_string_buffer", Outcome::kAbort, Outcome::kPass,
                    Outcome::kCatastrophic},
        BadFileCase{"file_null", Outcome::kAbort, Outcome::kPass,
                    Outcome::kCatastrophic},
        BadFileCase{"file_dangling", Outcome::kAbort, Outcome::kPass,
                    Outcome::kCatastrophic},
        BadFileCase{"file_bad_magic", Outcome::kAbort, Outcome::kPass,
                    Outcome::kCatastrophic}));

TEST(CeStdio, SeventeenFunctionsShareTheHazard) {
  const auto& w = shared_world();
  const char* kKernelThunked[] = {"fclose", "fflush",  "freopen", "fseek",
                                  "ftell",  "clearerr", "fread",  "fwrite",
                                  "fgetc",  "fgets",   "fputc",  "fputs",
                                  "fprintf", "fscanf",  "getc",   "putc",
                                  "ungetc"};
  for (const char* name : kKernelThunked) {
    const core::MuT* m = w.registry.find(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_NE(m->hazard_on(OsVariant::kWinCE), core::CrashStyle::kNone)
        << name;
  }
  // rewind pre-validates on CE (absent from Table 3).
  EXPECT_EQ(w.registry.find("rewind")->hazard_on(OsVariant::kWinCE),
            core::CrashStyle::kNone);
}

TEST(CeStdio, RewindAbortsInsteadOfCrashing) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinCE);
  const auto r =
      run_named_case(w, OsVariant::kWinCE, "rewind", {"file_dangling"}, &m);
  EXPECT_EQ(r.outcome, Outcome::kAbort);
  EXPECT_FALSE(m.crashed());
}

TEST(CeStdio, FreadIsDeferredStyle) {
  const auto& w = shared_world();
  EXPECT_EQ(w.registry.find("fread")->hazard_on(OsVariant::kWinCE),
            core::CrashStyle::kDeferred);
  EXPECT_EQ(w.registry.find("fgets")->hazard_on(OsVariant::kWinCE),
            core::CrashStyle::kDeferred);
  EXPECT_EQ(w.registry.find("fclose")->hazard_on(OsVariant::kWinCE),
            core::CrashStyle::kImmediate);
}

TEST(Fwrite, Win98HazardOnlyThere) {
  const auto& w = shared_world();
  const core::MuT* m = w.registry.find("fwrite");
  EXPECT_EQ(m->hazard_on(OsVariant::kWin98), core::CrashStyle::kDeferred);
  EXPECT_EQ(m->hazard_on(OsVariant::kWin95), core::CrashStyle::kNone);
  EXPECT_EQ(m->hazard_on(OsVariant::kWin98SE), core::CrashStyle::kNone);
}

TEST(StreamRoundTrip, WriteSeekReadThroughTheApi) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  // fputc('a', valid) then fgetc again via separate cases exercises the
  // shared fixture; here just verify each pass.
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "fputc",
                           {"ch_a", "file_valid_rw"}, &m)
                .outcome,
            Outcome::kPass);
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "fgetc", {"file_valid_rw"},
                           &m)
                .outcome,
            Outcome::kPass);
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "fseek",
                           {"file_valid_rw", "int_2", "int_0"}, &m)
                .outcome,
            Outcome::kPass);
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "ftell", {"file_valid_rw"},
                           &m)
                .outcome,
            Outcome::kPass);
}

TEST(Fread, BadBufferAborts) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "fread",
                           {"buf_dangling", "size_1", "size_16",
                            "file_valid_rw"},
                           &m)
                .outcome,
            Outcome::kAbort);
}

TEST(Fwrite, ReadOnlyStreamReportsError) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  const auto r = run_named_case(w, OsVariant::kLinux, "fwrite",
                                {"cbuf_64", "size_1", "size_16",
                                 "file_valid_ro"},
                                &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_FALSE(r.success_no_error);
}

TEST(Printf, MissingVarargsFaultOnConversions) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  // %s with no argument dereferences the missing-arg slot: Abort.
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "fprintf",
                           {"file_valid_rw", "fmt_s"}, &m)
                .outcome,
            Outcome::kAbort);
  // %n writes through it: Abort.
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "fprintf",
                           {"file_valid_rw", "fmt_n"}, &m)
                .outcome,
            Outcome::kAbort);
  // Plain %d formats harmlessly.
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "fprintf",
                           {"file_valid_rw", "fmt_d"}, &m)
                .outcome,
            Outcome::kPass);
}

TEST(Sprintf, BadTargetBufferAborts) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinNT4);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "sprintf",
                           {"buf_kernel", "fmt_d"}, &m)
                .outcome,
            Outcome::kAbort);
}

TEST(FflushNull, FlushesAllOnDesktopCrashesCeInKernel) {
  const auto& w = shared_world();
  sim::Machine nt(OsVariant::kWinNT4);
  EXPECT_EQ(
      run_named_case(w, OsVariant::kWinNT4, "fflush", {"file_null"}, &nt)
          .outcome,
      Outcome::kPass);
  sim::Machine ce(OsVariant::kWinCE);
  EXPECT_EQ(
      run_named_case(w, OsVariant::kWinCE, "fflush", {"file_null"}, &ce)
          .outcome,
      Outcome::kCatastrophic);
}

TEST(RemoveRename, PathBasedSoNoCeHazard) {
  const auto& w = shared_world();
  EXPECT_EQ(w.registry.find("remove")->hazard_on(OsVariant::kWinCE),
            core::CrashStyle::kNone);
  sim::Machine m(OsVariant::kWinCE);
  EXPECT_EQ(
      run_named_case(w, OsVariant::kWinCE, "remove", {"path_fixture"}, &m)
          .outcome,
      Outcome::kPass);
}

}  // namespace
}  // namespace ballista::clib
