// Tests for the thirteenth functional group — Win32 synchronization — and
// the data-driven group registry that admits it: per-variant MuT subsets,
// default-plan exclusion, --groups mask plumbing through plan/campaign/
// store, parallel determinism, and the NT-vs-Win9x error-model contrast the
// group was built to exhibit.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "core/ballista.h"
#include "core/diff.h"
#include "store/store.h"
#include "tests/test_util.h"

namespace ballista {
namespace {

using core::ApiKind;
using core::Campaign;
using core::CampaignOptions;
using core::CampaignResult;
using core::FuncGroup;
using sim::OsVariant;
using testing::find_value;
using testing::shared_world;

constexpr std::uint32_t kSyncBit = core::group_bit(FuncGroup::kWin32Sync);

std::size_t sync_count(OsVariant v) {
  std::size_t n = 0;
  for (const core::MuT* m : shared_world().registry.for_variant(v))
    if (m->group == FuncGroup::kWin32Sync) ++n;
  return n;
}

TEST(SyncGroup, RegistryShapePerVariant) {
  const auto& reg = shared_world().registry;
  EXPECT_EQ(reg.count_group(FuncGroup::kWin32Sync), 19u);
  // SignalObjectAndWait is NT-family only; the Open*/semaphore calls and
  // PulseEvent are absent on CE; InterlockedExchangeAdd/CompareExchange
  // postdate Win95.
  EXPECT_EQ(sync_count(OsVariant::kWinNT4), 19u);
  EXPECT_EQ(sync_count(OsVariant::kWin2000), 19u);
  EXPECT_EQ(sync_count(OsVariant::kWin98), 18u);
  EXPECT_EQ(sync_count(OsVariant::kWin98SE), 18u);
  EXPECT_EQ(sync_count(OsVariant::kWin95), 16u);
  EXPECT_EQ(sync_count(OsVariant::kWinCE), 10u);
  EXPECT_EQ(sync_count(OsVariant::kLinux), 0u);
}

TEST(SyncGroup, TableDerivationsAndTokenParsing) {
  const auto* d = core::group_from_token("sync");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->id, FuncGroup::kWin32Sync);
  EXPECT_FALSE(d->in_default_campaign);
  EXPECT_FALSE(d->crash_default);
  EXPECT_FALSE(core::is_clib_group(FuncGroup::kWin32Sync));
  EXPECT_EQ(core::group_name(FuncGroup::kWin32Sync), "Win32 Synchronization");
  // The default-campaign mask is exactly the paper's twelve groups.
  EXPECT_EQ(core::kDefaultCampaignGroupMask & kSyncBit, 0u);
  EXPECT_EQ(core::kEveryGroupMask,
            core::kDefaultCampaignGroupMask | kSyncBit |
                core::group_bit(FuncGroup::kSockets));

  std::string err;
  EXPECT_EQ(core::parse_group_list("sync", &err), kSyncBit);
  EXPECT_EQ(core::parse_group_list("sync,filedir", &err),
            kSyncBit | core::group_bit(FuncGroup::kFileDirAccess));
  EXPECT_EQ(core::parse_group_list("all", &err), core::kEveryGroupMask);
  EXPECT_EQ(core::parse_group_list("bogus", &err), std::nullopt);
  EXPECT_NE(err.find("bogus"), std::string::npos);
}

TEST(SyncGroup, DefaultPlanExcludesSyncMuts) {
  core::PlanOptions opt;
  opt.cap = 24;
  const core::Plan plan =
      core::make_plan(OsVariant::kWinNT4, shared_world().registry, opt);
  for (const core::MuT* m : plan.muts)
    EXPECT_NE(m->group, FuncGroup::kWin32Sync) << m->name;
  opt.group_mask = kSyncBit;
  const core::Plan sync_plan =
      core::make_plan(OsVariant::kWinNT4, shared_world().registry, opt);
  EXPECT_EQ(sync_plan.muts.size(), 19u);
  for (const core::MuT* m : sync_plan.muts)
    EXPECT_EQ(m->group, FuncGroup::kWin32Sync) << m->name;
}

TEST(SyncGroup, CampaignMaskSelectsOnlySync) {
  CampaignOptions opt;
  opt.cap = 24;
  opt.group_mask = kSyncBit;
  const CampaignResult r =
      Campaign::run(OsVariant::kWinNT4, shared_world().registry, opt);
  EXPECT_EQ(r.stats.size(), 19u);
  for (const auto& s : r.stats)
    EXPECT_EQ(s.mut->group, FuncGroup::kWin32Sync) << s.mut->name;
  EXPECT_GT(r.total_cases, 0u);
}

TEST(SyncGroup, ParallelCampaignsAreBitIdentical) {
  for (OsVariant v : sim::kAllVariants) {
    if (v == OsVariant::kLinux) continue;  // no sync MuTs there
    CampaignOptions seq, par;
    seq.cap = par.cap = 24;
    seq.group_mask = par.group_mask = kSyncBit;
    par.jobs = 4;
    const auto a = Campaign::run(v, shared_world().registry, seq);
    const auto b = Campaign::run(v, shared_world().registry, par);
    ASSERT_EQ(a.stats.size(), b.stats.size()) << sim::variant_name(v);
    for (std::size_t i = 0; i < a.stats.size(); ++i) {
      EXPECT_EQ(a.stats[i].mut, b.stats[i].mut);
      EXPECT_EQ(a.stats[i].case_codes, b.stats[i].case_codes)
          << sim::variant_name(v) << " / " << a.stats[i].mut->name;
      EXPECT_EQ(a.stats[i].aborts, b.stats[i].aborts);
      EXPECT_EQ(a.stats[i].silent_candidates, b.stats[i].silent_candidates);
    }
    EXPECT_EQ(a.reboots, b.reboots) << sim::variant_name(v);
  }
}

/// Runs one case of a *sync-group* MuT (bare names would resolve to the
/// paper's process-primitives twin).
core::CaseResult run_sync_case(OsVariant v, std::string_view name,
                               const std::vector<std::string>& value_names,
                               sim::Machine* machine) {
  const core::MuT* mut =
      shared_world().registry.find(name, FuncGroup::kWin32Sync);
  EXPECT_NE(mut, nullptr) << name;
  std::vector<const core::TestValue*> tuple;
  for (std::size_t i = 0; i < value_names.size(); ++i)
    tuple.push_back(find_value(*mut->params[i], value_names[i]));
  core::Executor executor(*machine);
  return executor.run_case(*mut, tuple);
}

TEST(SyncGroup, NtReportsInvalidHandleWhereWin9xSilentlySucceeds) {
  // SetEvent on a closed handle: NT4 reports ERROR_INVALID_HANDLE (a proper
  // error return), Win95's loose stub reports success having done nothing —
  // a Silent candidate for Figure-2 voting.
  sim::Machine nt(OsVariant::kWinNT4);
  const auto rn = run_sync_case(OsVariant::kWinNT4, "SetEvent", {"ev_closed"},
                                &nt);
  EXPECT_EQ(rn.outcome, core::Outcome::kPass);
  EXPECT_FALSE(rn.success_no_error);

  sim::Machine w95(OsVariant::kWin95);
  const auto r9 = run_sync_case(OsVariant::kWin95, "SetEvent", {"ev_closed"},
                                &w95);
  EXPECT_EQ(r9.outcome, core::Outcome::kPass);
  EXPECT_TRUE(r9.success_no_error);
}

TEST(SyncGroup, WaitSemanticsConsumeTheSignal) {
  // An auto-reset event satisfies exactly one zero-timeout wait; a second
  // wait times out.  Manual-reset events keep satisfying waits.
  sim::Machine nt(OsVariant::kWinNT4);
  auto first = run_sync_case(OsVariant::kWinNT4, "WaitForSingleObject",
                             {"w_event_signaled", "st_0"}, &nt);
  EXPECT_EQ(first.outcome, core::Outcome::kPass);

  // ReleaseMutex without ownership is an error on every variant — Win9x
  // validates mutex ownership even where it skips handle validation.
  sim::Machine w98(OsVariant::kWin98);
  const auto rm = run_sync_case(OsVariant::kWin98, "ReleaseMutex",
                                {"mx_free"}, &w98);
  EXPECT_EQ(rm.outcome, core::Outcome::kPass);
  EXPECT_FALSE(rm.success_no_error);
}

TEST(SyncGroup, InfiniteWaitOnUnsignaledObjectHangsTheTask) {
  sim::Machine nt(OsVariant::kWinNT4);
  const auto r = run_sync_case(OsVariant::kWinNT4, "WaitForSingleObject",
                               {"w_event_unsignaled", "st_infinite"}, &nt);
  EXPECT_EQ(r.outcome, core::Outcome::kRestart);  // watchdog kills the hang
}

TEST(SyncGroup, StoreRoundTripPreservesGroupFilter) {
  const std::string path = ::testing::TempDir() + "ballista_syncstore." +
                           std::to_string(::getpid()) + ".blog";
  CampaignOptions opt;
  opt.cap = 24;
  opt.group_mask = kSyncBit;
  const store::StoreRun written = store::run_with_store(
      OsVariant::kWinNT4, shared_world().registry, opt, path,
      /*resume=*/false);
  ASSERT_TRUE(written.ok) << written.error;

  const store::StoreContents contents = store::read_store_file(path);
  ASSERT_EQ(contents.status, store::ReadStatus::kOk);
  EXPECT_EQ(contents.header.has_group_filter, 1);
  EXPECT_EQ(contents.header.group_mask, kSyncBit);

  // A loaded log replays to the same campaign: the header's group-filter
  // tail re-parameterizes plan_for, so MuT lists line up.
  const store::StoreRun loaded = store::load_result(shared_world().registry,
                                                    path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  const core::CampaignDiff d =
      core::diff_campaigns(written.result, loaded.result);
  EXPECT_TRUE(d.identical());

  // Unfiltered logs keep the legacy header: no group-filter tail at all.
  const std::string legacy = path + ".legacy";
  CampaignOptions plain;
  plain.cap = 24;
  const store::StoreRun base = store::run_with_store(
      OsVariant::kWinNT4, shared_world().registry, plain, legacy, false);
  ASSERT_TRUE(base.ok) << base.error;
  const store::StoreContents lc = store::read_store_file(legacy);
  ASSERT_EQ(lc.status, store::ReadStatus::kOk);
  EXPECT_EQ(lc.header.has_group_filter, 0);
  std::remove(path.c_str());
  std::remove(legacy.c_str());
}

TEST(SyncGroup, SilentRatesSplitByPersonality) {
  // Campaign-level version of the contrast: the Win9x stubs turn bad sync
  // handles into Silent candidates, the NT family into reported errors.
  CampaignOptions opt;
  opt.cap = 24;
  opt.group_mask = kSyncBit;
  std::uint64_t nt_silent = 0, w95_silent = 0, nt_cases = 0, w95_cases = 0;
  for (const auto& s :
       Campaign::run(OsVariant::kWinNT4, shared_world().registry, opt).stats) {
    nt_silent += s.silent_candidates;
    nt_cases += s.executed;
  }
  for (const auto& s :
       Campaign::run(OsVariant::kWin95, shared_world().registry, opt).stats) {
    w95_silent += s.silent_candidates;
    w95_cases += s.executed;
  }
  ASSERT_GT(nt_cases, 0u);
  ASSERT_GT(w95_cases, 0u);
  const double nt_rate = static_cast<double>(nt_silent) / nt_cases;
  const double w95_rate = static_cast<double>(w95_silent) / w95_cases;
  EXPECT_GT(w95_rate, nt_rate);
  EXPECT_GT(w95_rate, 0.05);
}

}  // namespace
}  // namespace ballista
