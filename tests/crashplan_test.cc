// Crash-consistency campaigns (core/crashplan + the store's crash flavor):
// plan derivation from the group mask, merged-result determinism across
// --jobs, agreement between the campaign engine and the standalone
// crash_probe_case repro path, the kCrashOutcome codec, and the crash log's
// resume/load drivers including record-flavor strictness.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/ballista.h"
#include "core/crashplan.h"
#include "sim/mutation.h"
#include "store/store.h"
#include "tests/store_test_util.h"
#include "tests/test_util.h"

namespace ballista {
namespace {

using core::CrashOptions;
using core::CrashShardOutcome;
using core::CrashVerdict;
using core::crash_group_bit;
using sim::OsVariant;
using store::CampaignStore;
using store::ReadStatus;
using testing::shared_world;

// The pid keeps paths unique when ctest runs the gtest-discovered copy of a
// test and the crashplan aggregate entry concurrently.
std::string temp_blog(const std::string& stem) {
  return ::testing::TempDir() + "ballista_crash_" + stem + "." +
         std::to_string(::getpid()) + ".blog";
}

/// Small-but-real options: a few cuts per case over the default groups keeps
/// each test in the low hundreds of executed cases.
CrashOptions small_options() {
  CrashOptions opt;
  opt.cap = 8;
  opt.max_cuts = 3;
  opt.shard_cases = 16;
  return opt;
}

TEST(CrashPlan, SelectsOnlyGroupsInTheMask) {
  const auto& world = shared_world();
  const core::Plan plan =
      core::crash_plan_for(OsVariant::kWinNT4, world.registry, small_options());
  ASSERT_FALSE(plan.muts.empty());
  std::uint64_t planned = 0;
  for (const core::MuT* m : plan.muts) {
    const bool file_dir = m->group == core::FuncGroup::kFileDirAccess;
    const bool memory = m->group == core::FuncGroup::kMemoryManagement;
    EXPECT_TRUE(file_dir || memory) << m->name;
  }
  for (const core::Shard& s : plan.shards)
    for (const core::ShardItem& it : s.items) {
      EXPECT_LE(it.range.count, small_options().shard_cases);
      EXPECT_EQ(plan.muts[it.mut_index], it.mut);
      planned += it.range.count;
    }
  EXPECT_EQ(planned, plan.total_planned);

  CrashOptions mem_only = small_options();
  mem_only.group_mask = crash_group_bit(core::FuncGroup::kMemoryManagement);
  const core::Plan mem_plan =
      core::crash_plan_for(OsVariant::kWinNT4, world.registry, mem_only);
  ASSERT_FALSE(mem_plan.muts.empty());
  EXPECT_LT(mem_plan.muts.size(), plan.muts.size());
  for (const core::MuT* m : mem_plan.muts)
    EXPECT_EQ(m->group, core::FuncGroup::kMemoryManagement) << m->name;
}

TEST(CrashEngine, MergedResultIsIdenticalForAnyJobsValue) {
  const auto& world = shared_world();
  CrashOptions opt = small_options();
  const auto seq =
      core::run_crash_engine(OsVariant::kWin95, world.registry, opt);
  const auto seq2 =
      core::run_crash_engine(OsVariant::kWin95, world.registry, opt);
  EXPECT_EQ(core::diff_crash_results(seq, seq2), "");

  opt.jobs = 4;
  const auto par =
      core::run_crash_engine(OsVariant::kWin95, world.registry, opt);
  EXPECT_EQ(core::diff_crash_results(seq, par), "");
  EXPECT_GT(seq.total_points, 0u);
  EXPECT_GT(seq.total_cuts, 0u);
  EXPECT_EQ(seq.total_cuts, seq.consistent + seq.inconsistent + seq.no_cut);
}

TEST(CrashProbe, MatchesTheCountingPassAndRejectsOutOfRangeCuts) {
  const auto& world = shared_world();
  const core::MuT* mut = world.registry.find("CreateFile");
  ASSERT_NE(mut, nullptr);

  // Find a case with at least one persistence point, the same way the
  // campaign's counting pass does.
  sim::Machine machine(OsVariant::kWinNT4);
  core::Executor executor(machine);
  sim::MutationHub& hub = machine.mutations();
  core::TupleGenerator gen(*mut, /*cap=*/8);
  std::uint64_t case_index = 0, points = 0;
  for (; case_index < gen.count(); ++case_index) {
    hub.reset_counts();
    hub.set_counting(true);
    executor.run_case(*mut, gen.tuple(case_index),
                      static_cast<std::int64_t>(case_index));
    hub.set_counting(false);
    if (machine.crashed()) machine.restore(sim::RestoreLevel::kReboot);
    if (hub.seq() > 0) {
      points = hub.seq();
      break;
    }
  }
  ASSERT_GT(points, 0u) << "no CreateFile case announced a mutation point";

  // Every in-range cut fires and yields a real verdict; the detail string is
  // empty exactly when the verdict is consistent.
  const std::uint64_t seed = CrashOptions{}.seed;
  for (std::uint64_t k = 1; k <= points; ++k) {
    std::string detail;
    const CrashVerdict v = core::crash_probe_case(
        OsVariant::kWinNT4, *mut, case_index, k, /*cap=*/8, seed, &detail);
    EXPECT_NE(v, CrashVerdict::kNoCut) << "k=" << k;
    EXPECT_EQ(detail.empty(), v == CrashVerdict::kConsistent) << "k=" << k;
  }

  // A cut past the counting pass's point total never fires.
  std::string detail;
  EXPECT_EQ(core::crash_probe_case(OsVariant::kWinNT4, *mut, case_index,
                                   points + 1, /*cap=*/8, seed, &detail),
            CrashVerdict::kNoCut);
  EXPECT_NE(detail, "");
  // And an out-of-range case index is reported as kNoCut, not a crash.
  EXPECT_EQ(core::crash_probe_case(OsVariant::kWinNT4, *mut, gen.count() + 7, 1,
                                   /*cap=*/8, seed, nullptr),
            CrashVerdict::kNoCut);
}

TEST(CrashStoreCodec, CrashShardOutcomeRoundTripsExactly) {
  CrashShardOutcome o;
  o.shard_index = 3;
  o.cuts_tested = 42;
  o.reboots = 45;
  CrashShardOutcome::MutPartial p;
  p.mut_index = 2;
  p.range_first = 16;
  p.stats.planned = 24;
  p.stats.cases_counted = 8;
  p.stats.points_total = 31;
  p.stats.cuts_tested = 42;
  p.stats.consistent = 40;
  p.stats.inconsistent = 1;
  p.stats.no_cut = 1;
  for (std::size_t k = 0; k < sim::kMutationKindCount; ++k)
    p.stats.point_counts[k] = 100 + k;
  p.stats.findings.push_back(
      {/*case_index=*/5, /*cut_at=*/2, CrashVerdict::kInconsistent,
       "fs: node dangles"});
  p.stats.findings.push_back(
      {/*case_index=*/6, /*cut_at=*/1, CrashVerdict::kNoCut,
       "armed cut at point 1 fired at 0"});
  o.partials.push_back(p);

  const std::vector<std::uint8_t> bytes = store::encode_crash_shard_outcome(o);
  CrashShardOutcome back;
  ASSERT_TRUE(
      store::decode_crash_shard_outcome(bytes.data(), bytes.size(), back));
  EXPECT_EQ(back.shard_index, o.shard_index);
  EXPECT_EQ(back.cuts_tested, o.cuts_tested);
  EXPECT_EQ(back.reboots, o.reboots);
  ASSERT_EQ(back.partials.size(), 1u);
  const auto& q = back.partials[0];
  EXPECT_EQ(q.mut_index, p.mut_index);
  EXPECT_EQ(q.range_first, p.range_first);
  EXPECT_EQ(q.stats.points_total, p.stats.points_total);
  EXPECT_EQ(q.stats.point_counts, p.stats.point_counts);
  ASSERT_EQ(q.stats.findings.size(), 2u);
  EXPECT_EQ(q.stats.findings[0], p.stats.findings[0]);
  EXPECT_EQ(q.stats.findings[1], p.stats.findings[1]);

  // Any truncation is a strict decode failure, never a partial record.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    CrashShardOutcome scratch;
    EXPECT_FALSE(store::decode_crash_shard_outcome(bytes.data(), cut, scratch))
        << "decoder accepted a " << cut << "-byte prefix";
  }
}

TEST(CrashStoreCodec, CrashHeaderTailRoundTripsThroughAFile) {
  const auto& world = shared_world();
  CrashOptions opt = small_options();
  opt.group_mask = crash_group_bit(core::FuncGroup::kFileDirAccess);
  const core::Plan plan =
      core::crash_plan_for(OsVariant::kWin2000, world.registry, opt);
  const store::RunHeader header = store::make_crash_run_header(plan, opt);
  EXPECT_EQ(header.crash_mode, 1u);
  EXPECT_EQ(header.crash_max_cuts, opt.max_cuts);
  EXPECT_EQ(header.crash_group_mask, opt.group_mask);
  EXPECT_EQ(header.record_cases, 0u);

  const std::string path = temp_blog("header");
  std::string err;
  {
    auto log = CampaignStore::create(path, header, &err);
    ASSERT_NE(log, nullptr) << err;
  }
  const store::StoreContents c = store::read_store_file(path);
  EXPECT_EQ(c.status, ReadStatus::kOk) << c.error;
  EXPECT_EQ(c.header, header);
  std::remove(path.c_str());
}

TEST(CrashStore, FreshRunSealsAndLoadsBack) {
  const auto& world = shared_world();
  const CrashOptions opt = small_options();
  const std::string path = temp_blog("fresh");
  const store::CrashStoreRun run = store::run_crash_with_store(
      OsVariant::kWinNT4, world.registry, opt, path, /*resume=*/false);
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.shards_reused, 0u);
  EXPECT_GT(run.shards_executed, 0u);
  EXPECT_GT(run.result.total_cuts, 0u);

  const store::CrashStoreRun loaded =
      store::load_crash_result(world.registry, path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.shards_executed, 0u);
  EXPECT_EQ(core::diff_crash_results(run.result, loaded.result), "");

  // The in-memory engine and the stored run agree exactly.
  const auto direct =
      core::run_crash_engine(OsVariant::kWinNT4, world.registry, opt);
  EXPECT_EQ(core::diff_crash_results(direct, run.result), "");
  std::remove(path.c_str());
}

TEST(CrashStore, TruncatedLogResumesToTheIdenticalResult) {
  const auto& world = shared_world();
  const CrashOptions opt = small_options();
  const std::string master = temp_blog("resume_master");
  const store::CrashStoreRun full = store::run_crash_with_store(
      OsVariant::kWinNT4, world.registry, opt, master, false);
  ASSERT_TRUE(full.ok) << full.error;

  std::vector<char> bytes;
  {
    std::ifstream f(master, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(f),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);

  // Cut the sealed log roughly in half (mid-frame) and resume: the replayed
  // prefix plus the re-executed suffix must merge to the identical result.
  const std::string stub = temp_blog("resume_cut");
  {
    std::ofstream f(stub, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  const store::CrashStoreRun resumed = store::run_crash_with_store(
      OsVariant::kWinNT4, world.registry, opt, stub, /*resume=*/true);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_GT(resumed.shards_executed, 0u);
  EXPECT_EQ(core::diff_crash_results(full.result, resumed.result), "");

  const store::CrashStoreRun loaded =
      store::load_crash_result(world.registry, stub);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(core::diff_crash_results(full.result, loaded.result), "");
  std::remove(master.c_str());
  std::remove(stub.c_str());
}

TEST(CrashStore, RecordFlavorsNeverMix) {
  const auto& world = shared_world();
  const CrashOptions copt = small_options();
  const core::Plan crash_plan =
      core::crash_plan_for(OsVariant::kWinNT4, world.registry, copt);
  std::string err;

  // A base-campaign shard record inside a crash log ends the valid prefix.
  const std::string crash_path = temp_blog("flavor_crash");
  {
    auto log = CampaignStore::create(
        crash_path, store::make_crash_run_header(crash_plan, copt), &err);
    ASSERT_NE(log, nullptr) << err;
    core::ShardOutcome base;
    base.shard_index = 0;
    ASSERT_TRUE(log->append_shard(base));
  }
  const store::StoreContents c1 = store::read_store_file(crash_path);
  EXPECT_EQ(c1.status, ReadStatus::kCorrupt);
  EXPECT_TRUE(c1.crash_outcomes.empty());

  // And a crash record inside a base log is equally rejected.
  testing::TinyWorld tiny;
  const core::CampaignOptions base_opt = testing::tiny_options();
  core::PlanOptions base_popt;
  base_popt.cap = base_opt.cap;
  base_popt.seed = base_opt.seed;
  base_popt.only_api = base_opt.only_api;
  base_popt.shard_cases = base_opt.shard_cases;
  const core::Plan base_plan =
      core::make_plan(OsVariant::kWinNT4, tiny.registry, base_popt);
  const std::string base_path = temp_blog("flavor_base");
  {
    auto log = CampaignStore::create(
        base_path, store::make_run_header(base_plan, base_opt), &err);
    ASSERT_NE(log, nullptr) << err;
    CrashShardOutcome crash;
    crash.shard_index = 0;
    ASSERT_TRUE(log->append_crash_shard(crash));
  }
  const store::StoreContents c2 = store::read_store_file(base_path);
  EXPECT_EQ(c2.status, ReadStatus::kCorrupt);
  EXPECT_TRUE(c2.outcomes.empty());

  // load_crash_result refuses a base-campaign log outright.
  const store::CrashStoreRun wrong =
      store::load_crash_result(tiny.registry, base_path);
  EXPECT_FALSE(wrong.ok);
  EXPECT_NE(wrong.error.find("crash"), std::string::npos) << wrong.error;
  std::remove(crash_path.c_str());
  std::remove(base_path.c_str());
}

}  // namespace
}  // namespace ballista
