// Deeper semantic tests for the C library: stdio mode/seek matrices, unget
// behaviour, string scanning, formatting and parsing details — checked
// through direct dispatch so results (not just classifications) are visible.
#include <gtest/gtest.h>

#include "clib/crt.h"
#include "tests/test_util.h"

namespace ballista::clib {
namespace {

using core::CallOutcome;
using core::RawArg;
using sim::OsVariant;
using testing::shared_world;

/// Dispatch helper: one call against a persistent machine/process.
class ClibFixture : public ::testing::Test {
 protected:
  ClibFixture() : machine(OsVariant::kLinux) {
    proc = machine.create_process();
  }

  CallOutcome call(const char* name, std::vector<RawArg> args) {
    const core::MuT* mut = shared_world().registry.find(name);
    EXPECT_NE(mut, nullptr) << name;
    last_args = std::move(args);
    core::CallContext ctx(machine, *proc, *mut, last_args);
    machine.kernel_enter();
    return mut->impl(ctx);
  }

  sim::Addr cstr(std::string_view s) { return proc->mem().alloc_cstr(s); }
  std::string str_at(sim::Addr a) {
    return proc->mem().read_cstr(a, 4096, sim::Access::kKernel);
  }

  sim::Machine machine;
  std::unique_ptr<sim::SimProcess> proc;
  std::vector<RawArg> last_args;
};

TEST_F(ClibFixture, FopenModeMatrix) {
  // "r" on a missing file: NULL.
  EXPECT_EQ(call("fopen", {cstr("/tmp/nope"), cstr("r")}).ret, 0u);
  // "w" creates it.
  const auto w = call("fopen", {cstr("/tmp/nope"), cstr("w")});
  EXPECT_NE(w.ret, 0u);
  // Now "r" works.
  EXPECT_NE(call("fopen", {cstr("/tmp/nope"), cstr("r")}).ret, 0u);
  // "a" appends: write then check size grows.
  const auto a = call("fopen", {cstr("/tmp/nope"), cstr("a")});
  EXPECT_NE(a.ret, 0u);
}

TEST_F(ClibFixture, WriteReadRoundTripThroughStdio) {
  const auto f = call("fopen", {cstr("/tmp/rt.txt"), cstr("w")});
  ASSERT_NE(f.ret, 0u);
  const sim::Addr data = cstr("roundtrip!");
  EXPECT_EQ(call("fwrite", {data, 1, 10, f.ret}).ret, 10u);
  EXPECT_EQ(call("fclose", {f.ret}).ret, 0u);

  const auto g = call("fopen", {cstr("/tmp/rt.txt"), cstr("r")});
  ASSERT_NE(g.ret, 0u);
  const sim::Addr buf = proc->mem().alloc(64);
  EXPECT_EQ(call("fread", {buf, 1, 10, g.ret}).ret, 10u);
  EXPECT_EQ(proc->mem().read_cstr(buf, 10, sim::Access::kKernel),
            "roundtrip!");
}

TEST_F(ClibFixture, SeekTellRewindProtocol) {
  const auto f = call("fopen", {cstr("/tmp/fixture.dat"), cstr("r")});
  ASSERT_NE(f.ret, 0u);
  EXPECT_EQ(call("fseek", {f.ret, 10, 0}).ret, 0u);        // SEEK_SET
  EXPECT_EQ(call("ftell", {f.ret}).ret, 10u);
  EXPECT_EQ(call("fseek", {f.ret, 5, 1}).ret, 0u);         // SEEK_CUR
  EXPECT_EQ(call("ftell", {f.ret}).ret, 15u);
  EXPECT_EQ(call("fseek", {f.ret, 0, 2}).ret, 0u);         // SEEK_END
  EXPECT_GT(call("ftell", {f.ret}).ret, 15u);
  EXPECT_EQ(call("rewind", {f.ret}).ret, 0u);
  EXPECT_EQ(call("ftell", {f.ret}).ret, 0u);
  // Bogus whence and negative targets report errors.
  EXPECT_EQ(call("fseek", {f.ret, 0, 42}).status,
            core::CallStatus::kErrorReported);
  EXPECT_EQ(call("fseek", {f.ret, static_cast<RawArg>(-100) & 0xffffffffull,
                           0})
                .status,
            core::CallStatus::kErrorReported);
}

TEST_F(ClibFixture, UngetcComesBackFirst) {
  const auto f = call("fopen", {cstr("/tmp/fixture.dat"), cstr("r")});
  ASSERT_NE(f.ret, 0u);
  const auto first = call("fgetc", {f.ret});
  EXPECT_EQ(call("ungetc", {'Q', f.ret}).ret, static_cast<RawArg>('Q'));
  EXPECT_EQ(call("fgetc", {f.ret}).ret, static_cast<RawArg>('Q'));
  // Stream then resumes where it was.
  const auto next = call("fgetc", {f.ret});
  EXPECT_NE(next.ret, first.ret);
}

TEST_F(ClibFixture, FgetsStopsAtNewline) {
  const auto f = call("fopen", {cstr("/tmp/lines.txt"), cstr("w")});
  const sim::Addr text = cstr("one\ntwo\n");
  call("fwrite", {text, 1, 8, f.ret});
  call("fclose", {f.ret});
  const auto g = call("fopen", {cstr("/tmp/lines.txt"), cstr("r")});
  const sim::Addr buf = proc->mem().alloc(64);
  EXPECT_NE(call("fgets", {buf, 32, g.ret}).ret, 0u);
  EXPECT_EQ(str_at(buf), "one\n");
}

TEST_F(ClibFixture, SprintfFormatsIntoBuffer) {
  const sim::Addr buf = proc->mem().alloc(128);
  const auto r = call("sprintf", {buf, cstr("value=%d!")});
  EXPECT_EQ(r.status, core::CallStatus::kSuccess);
  EXPECT_EQ(str_at(buf), "value=0!");  // missing varargs print a zero
}

TEST_F(ClibFixture, SscanfParsesDigits) {
  const auto r = call("sscanf", {cstr("   123"), cstr("plain")});
  EXPECT_EQ(r.ret, 0u);  // no conversions
}

TEST_F(ClibFixture, StrtokWalksTokens) {
  const sim::Addr s = cstr("a,b,,c");
  const sim::Addr delim = cstr(",");
  const auto t1 = call("strtok", {s, delim});
  EXPECT_EQ(str_at(t1.ret), "a");
  const auto t2 = call("strtok", {0, delim});
  EXPECT_EQ(str_at(t2.ret), "b");
  const auto t3 = call("strtok", {0, delim});
  EXPECT_EQ(str_at(t3.ret), "c");
  EXPECT_EQ(call("strtok", {0, delim}).ret, 0u);
}

TEST_F(ClibFixture, StrSpnFamilies) {
  EXPECT_EQ(call("strspn", {cstr("aabbcc"), cstr("ab")}).ret, 4u);
  EXPECT_EQ(call("strcspn", {cstr("xyz,abc"), cstr(",")}).ret, 3u);
  const auto p = call("strpbrk", {cstr("hello world"), cstr("ow")});
  EXPECT_EQ(str_at(p.ret), "o world");
  EXPECT_EQ(call("strpbrk", {cstr("hello"), cstr("xyz")}).ret, 0u);
}

TEST_F(ClibFixture, StrchrAndStrrchrFindEnds) {
  const sim::Addr s = cstr("abcabc");
  const auto first = call("strchr", {s, 'b'});
  const auto last = call("strrchr", {s, 'b'});
  EXPECT_EQ(first.ret, s + 1);
  EXPECT_EQ(last.ret, s + 4);
  // NUL is findable at the terminator.
  EXPECT_EQ(call("strchr", {s, 0}).ret, s + 6);
}

TEST_F(ClibFixture, StrncatRespectsN) {
  const sim::Addr dst = proc->mem().alloc(64);
  proc->mem().write_cstr(dst, "ab", sim::Access::kKernel);
  call("strncat", {dst, cstr("cdef"), 2});
  EXPECT_EQ(str_at(dst), "abcd");
}

TEST_F(ClibFixture, MemmoveHandlesOverlap) {
  const sim::Addr buf = proc->mem().alloc(16);
  proc->mem().write_cstr(buf, "0123456789", sim::Access::kKernel);
  call("memmove", {buf + 2, buf, 8});
  EXPECT_EQ(str_at(buf + 2), "01234567");
}

TEST_F(ClibFixture, AtoiAndStrtolParse) {
  EXPECT_EQ(call("atoi", {cstr("  -42xyz")}).ret,
            static_cast<RawArg>(-42));
  EXPECT_EQ(call("atoi", {cstr("junk")}).ret, 0u);
  const sim::Addr endp = proc->mem().alloc(8);
  EXPECT_EQ(call("strtol", {cstr("ff"), endp, 16}).ret, 255u);
  EXPECT_EQ(call("strtol", {cstr("777"), endp, 8}).ret, 511u);
}

TEST_F(ClibFixture, CtypeValuesAreCorrectForValidInput) {
  EXPECT_EQ(call("isalpha", {'a'}).ret, 1u);
  EXPECT_EQ(call("isalpha", {'5'}).ret, 0u);
  EXPECT_EQ(call("isdigit", {'5'}).ret, 1u);
  EXPECT_EQ(call("isspace", {'\t'}).ret, 1u);
  EXPECT_EQ(call("isupper", {'a'}).ret, 0u);
  EXPECT_EQ(call("tolower", {'A'}).ret, static_cast<RawArg>('a'));
  EXPECT_EQ(call("toupper", {'z'}).ret, static_cast<RawArg>('Z'));
  EXPECT_EQ(call("toupper", {'!'}).ret, static_cast<RawArg>('!'));
}

TEST_F(ClibFixture, TimePipeline) {
  const sim::Addr tloc = proc->mem().alloc(8);
  const auto now = call("time", {tloc});
  EXPECT_GT(now.ret, 900'000'000u);  // anchored in 1999
  EXPECT_EQ(proc->mem().read_u32(tloc, sim::Access::kKernel),
            static_cast<std::uint32_t>(now.ret));
  const auto tm = call("gmtime", {tloc});
  ASSERT_NE(tm.ret, 0u);
  const auto str = call("asctime", {tm.ret});
  ASSERT_NE(str.ret, 0u);
  const std::string text = str_at(str.ret);
  EXPECT_NE(text.find("19"), std::string::npos);  // a 19xx year
  EXPECT_EQ(text.back(), '\n');
}

TEST_F(ClibFixture, MktimeInvertsRoughly) {
  // Build a tm for mid-1999 and check mktime lands the same decade.
  const sim::Addr tm = proc->mem().alloc(40);
  const std::int32_t f[9] = {0, 0, 12, 28, 5, 99, 0, 0, 0};
  for (int i = 0; i < 9; ++i)
    proc->mem().write_u32(tm + 4 * i, static_cast<std::uint32_t>(f[i]),
                          sim::Access::kKernel);
  const auto t = call("mktime", {tm});
  EXPECT_GT(t.ret, 890'000'000u);
  EXPECT_LT(t.ret, 970'000'000u);
}

TEST_F(ClibFixture, StrftimeKnownConversions) {
  const sim::Addr tm = proc->mem().alloc(40);
  const std::int32_t f[9] = {30, 45, 13, 28, 5, 99, 1, 178, 0};
  for (int i = 0; i < 9; ++i)
    proc->mem().write_u32(tm + 4 * i, static_cast<std::uint32_t>(f[i]),
                          sim::Access::kKernel);
  const sim::Addr buf = proc->mem().alloc(64);
  const auto n = call("strftime", {buf, 64, cstr("%Y-%m-%d %H:%M"), tm});
  EXPECT_EQ(n.ret, 16u);
  EXPECT_EQ(str_at(buf), "1999-06-28 13:45");
  // Too-small buffer returns 0 without writing.
  EXPECT_EQ(call("strftime", {buf, 4, cstr("%Y-%m-%d"), tm}).ret, 0u);
}

TEST_F(ClibFixture, MathErrnoProtocol) {
  const auto r = call("sqrt", {std::bit_cast<RawArg>(4.0)});
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(r.ret), 2.0);
  const auto p = call("pow", {std::bit_cast<RawArg>(2.0),
                              std::bit_cast<RawArg>(10.0)});
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(p.ret), 1024.0);
  const auto bad = call("fmod", {std::bit_cast<RawArg>(1.0),
                                 std::bit_cast<RawArg>(0.0)});
  EXPECT_EQ(bad.status, core::CallStatus::kErrorReported);
  EXPECT_EQ(proc->err_no(), EDOM);
}

TEST_F(ClibFixture, CallocZeroesAndMallocChunksAreDistinct) {
  const auto a = call("malloc", {64});
  const auto b = call("malloc", {64});
  EXPECT_NE(a.ret, 0u);
  EXPECT_NE(a.ret, b.ret);
  const auto c = call("calloc", {4, 16});
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(proc->mem().read_u8(c.ret + i, sim::Access::kKernel), 0);
  EXPECT_EQ(call("free", {a.ret}).status, core::CallStatus::kSuccess);
}

TEST_F(ClibFixture, ReallocPreservesPrefix) {
  const auto a = call("malloc", {8});
  proc->mem().write_cstr(a.ret, "seven!!", sim::Access::kKernel);
  const auto b = call("realloc", {a.ret, 64});
  EXPECT_EQ(str_at(b.ret), "seven!!");
}

}  // namespace
}  // namespace ballista::clib
