// Tests for Hindering failures — the H of CRASH: "an incorrect error
// indication such as the wrong error reporting code" (§2), detectable only
// where an oracle exists.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ballista {
namespace {

using core::Outcome;
using sim::OsVariant;
using testing::run_named_case;
using testing::shared_world;

TEST(Hindering, Win9xRemoveDirectoryMissingPathWrongCode) {
  const auto& w = shared_world();
  sim::Machine w98(OsVariant::kWin98);
  const auto r = run_named_case(w, OsVariant::kWin98, "RemoveDirectory",
                                {"path_missing"}, &w98);
  EXPECT_EQ(r.outcome, Outcome::kPass);  // still an error return...
  EXPECT_TRUE(r.wrong_error);            // ...but the wrong code
  EXPECT_EQ(w98.crashed(), false);

  // NT reports the correct ERROR_PATH_NOT_FOUND.
  sim::Machine nt(OsVariant::kWinNT4);
  const auto rn = run_named_case(w, OsVariant::kWinNT4, "RemoveDirectory",
                                 {"path_missing"}, &nt);
  EXPECT_FALSE(rn.wrong_error);
  EXPECT_FALSE(rn.success_no_error);
}

TEST(Hindering, GlibcFopenBogusModeWrongErrno) {
  const auto& w = shared_world();
  sim::Machine linux_box(OsVariant::kLinux);
  const auto r = run_named_case(w, OsVariant::kLinux, "fopen",
                                {"path_fixture", "mode_bogus"}, &linux_box);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_TRUE(r.wrong_error);

  sim::Machine nt(OsVariant::kWinNT4);
  const auto rn = run_named_case(w, OsVariant::kWinNT4, "fopen",
                                 {"path_fixture", "mode_bogus"}, &nt);
  EXPECT_FALSE(rn.wrong_error);
}

TEST(Hindering, CountedInCampaignStats) {
  core::CampaignOptions opt;
  opt.cap = 80;
  const auto r =
      core::Campaign::run(OsVariant::kWin98, shared_world().registry, opt);
  const auto* rd = r.find("RemoveDirectory");
  ASSERT_NE(rd, nullptr);
  EXPECT_GT(rd->hindering, 0u);
  // And rolls up into the variant summary.
  const auto s = core::summarize(r);
  EXPECT_GT(s.overall_hindering, 0.0);
}

TEST(Hindering, VotingTreatsWrongCodeAsAnErrorIndication) {
  // A sibling that reports *any* error — even the wrong one — still exposes
  // a Silent failure elsewhere (paper §4: "a pass with an error").
  // Covered structurally in voting_test.cc; here we confirm the case code.
  core::CampaignOptions opt;
  opt.cap = 80;
  const auto r =
      core::Campaign::run(OsVariant::kWin98, shared_world().registry, opt);
  const auto* rd = r.find("RemoveDirectory");
  ASSERT_NE(rd, nullptr);
  EXPECT_NE(std::find(rd->case_codes.begin(), rd->case_codes.end(),
                      core::CaseCode::kHindering),
            rd->case_codes.end());
}

}  // namespace
}  // namespace ballista
