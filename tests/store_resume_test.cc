// Kill-and-resume integration: a campaign whose writer dies mid-run — after
// any number of appended shards, with any torn tail — must resume into a
// merged CampaignResult bit-identical to an uninterrupted run, for every
// --jobs N and on hazard-chained and hazard-free variants alike.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/sched.h"
#include "store/store.h"
#include "tests/store_test_util.h"
#include "tests/test_util.h"

namespace ballista::store {
namespace {

using core::CampaignResult;
using core::MutStats;
using sim::OsVariant;
using testing::shared_world;
using testing::TinyWorld;
using testing::tiny_options;

/// The simulated process death: thrown out of on_shard_complete, it aborts
/// Campaign::run exactly where a SIGKILL would have.
struct WriterKilled {};

void expect_same_result(const CampaignResult& a, const CampaignResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.variant, b.variant) << label;
  EXPECT_EQ(a.reboots, b.reboots) << label;
  EXPECT_EQ(a.total_cases, b.total_cases) << label;
  EXPECT_EQ(a.event_counters, b.event_counters) << label;
  ASSERT_EQ(a.stats.size(), b.stats.size()) << label;
  for (std::size_t i = 0; i < a.stats.size(); ++i) {
    const MutStats& x = a.stats[i];
    const MutStats& y = b.stats[i];
    const std::string at = label + " / " + std::string(x.mut->name);
    EXPECT_EQ(x.mut, y.mut) << at;
    EXPECT_EQ(x.planned, y.planned) << at;
    EXPECT_EQ(x.executed, y.executed) << at;
    EXPECT_EQ(x.passes, y.passes) << at;
    EXPECT_EQ(x.aborts, y.aborts) << at;
    EXPECT_EQ(x.restarts, y.restarts) << at;
    EXPECT_EQ(x.silent_candidates, y.silent_candidates) << at;
    EXPECT_EQ(x.hindering, y.hindering) << at;
    EXPECT_EQ(x.catastrophic, y.catastrophic) << at;
    EXPECT_EQ(x.crash_case, y.crash_case) << at;
    EXPECT_EQ(x.crash_detail, y.crash_detail) << at;
    EXPECT_EQ(x.crash_tuple, y.crash_tuple) << at;
    EXPECT_EQ(x.crash_reproducible_single, y.crash_reproducible_single) << at;
    EXPECT_EQ(x.case_codes, y.case_codes) << at;
    EXPECT_EQ(x.event_counts, y.event_counts) << at;
    ASSERT_EQ(x.crash_trace.size(), y.crash_trace.size()) << at;
    for (std::size_t k = 0; k < x.crash_trace.size(); ++k) {
      EXPECT_EQ(x.crash_trace[k].kind, y.crash_trace[k].kind) << at;
      EXPECT_EQ(x.crash_trace[k].case_index, y.crash_trace[k].case_index)
          << at;
    }
  }
}

// The pid keeps paths unique when ctest runs the gtest-discovered copy of a
// test and its aggregate entry (store_fuzz / store_resume) concurrently.
std::string temp_blog(const std::string& stem) {
  return ::testing::TempDir() + "ballista_" + stem + "." +
         std::to_string(::getpid()) + ".blog";
}

/// Writes a log whose writer dies after `kill_after` appended shards (plus a
/// torn half-frame tail), then resumes it and checks the merged result
/// against `reference`.
void kill_and_resume(const core::Registry& registry, OsVariant v,
                     const core::CampaignOptions& opt,
                     const CampaignResult& reference, std::size_t kill_after,
                     const std::string& label) {
  const std::string path = temp_blog("resume");
  const core::Plan plan = core::plan_for(v, registry, opt);
  ASSERT_GT(plan.shards.size(), kill_after) << label;

  std::size_t appended = 0;
  {
    std::string err;
    auto log = CampaignStore::create(path, make_run_header(plan, opt), &err);
    ASSERT_NE(log, nullptr) << err;
    core::CampaignOptions dying = opt;
    dying.on_shard_complete = [&](const core::ShardOutcome& o) {
      if (appended >= kill_after) throw WriterKilled{};
      ASSERT_TRUE(log->append_shard(o));
      ++appended;
    };
    EXPECT_THROW(core::Campaign::run(v, registry, dying), WriterKilled)
        << label;
  }
  // The kill interrupted a write in flight: leave a torn frame head behind.
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    const char torn[] = {2, 0x40, 0};  // kShardOutcome, bogus partial length
    f.write(torn, sizeof torn);
  }

  StoreRun resumed = run_with_store(v, registry, opt, path, /*resume=*/true);
  ASSERT_TRUE(resumed.ok) << label << ": " << resumed.error;
  EXPECT_EQ(resumed.log_status, ReadStatus::kTruncated) << label;
  EXPECT_EQ(resumed.shards_reused, appended) << label;
  EXPECT_EQ(resumed.shards_reused + resumed.shards_executed,
            plan.shards.size())
      << label;
  expect_same_result(reference, resumed.result, label + " resumed");

  // The healed log is sealed: it loads back identical, with nothing re-run.
  StoreRun loaded = load_result(registry, path);
  ASSERT_TRUE(loaded.ok) << label << ": " << loaded.error;
  expect_same_result(reference, loaded.result, label + " loaded");
  std::remove(path.c_str());
}

TEST(StoreResume, KilledWriterResumesBitIdenticalOnWorldRegistry) {
  const auto& world = shared_world();
  // win98: deferred-hazard chains, catastrophic shards, crash traces.
  // nt4:   hazard-free, splittable plans.  linux: the POSIX personality.
  for (OsVariant v :
       {OsVariant::kWin98, OsVariant::kWinNT4, OsVariant::kLinux}) {
    core::CampaignOptions opt;
    opt.cap = 20;
    const CampaignResult reference =
        core::Campaign::run(v, world.registry, opt);
    const std::size_t shards =
        core::plan_for(v, world.registry, opt).shards.size();
    for (unsigned jobs : {1u, 3u}) {
      core::CampaignOptions jopt = opt;
      jopt.jobs = jobs;
      for (std::size_t kill_after : {std::size_t{0}, std::size_t{1},
                                     shards / 2}) {
        kill_and_resume(world.registry, v, jopt, reference, kill_after,
                        std::string(sim::variant_name(v)) + " jobs=" +
                            std::to_string(jobs) + " kill@" +
                            std::to_string(kill_after));
      }
    }
  }
}

TEST(StoreResume, ResumeOfASealedLogExecutesNothing) {
  const auto& world = shared_world();
  core::CampaignOptions opt;
  opt.cap = 20;
  const std::string path = temp_blog("sealed");
  const StoreRun first =
      run_with_store(OsVariant::kWinNT4, world.registry, opt, path, false);
  ASSERT_TRUE(first.ok) << first.error;

  const StoreRun again =
      run_with_store(OsVariant::kWinNT4, world.registry, opt, path, true);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.shards_executed, 0u);
  EXPECT_EQ(again.shards_reused, first.shards_executed);
  expect_same_result(first.result, again.result, "sealed resume");
  std::remove(path.c_str());
}

TEST(StoreResume, TruncationAtAnyByteResumesToTheIdenticalResult) {
  // Dense truncate-then-resume sweep on the tiny registry: every resumable
  // prefix must heal to the same final result; cuts inside the preamble or
  // header must fail loudly instead.
  TinyWorld tiny;
  const core::CampaignOptions opt = tiny_options();
  const OsVariant v = OsVariant::kWinNT4;
  const CampaignResult reference = core::Campaign::run(v, tiny.registry, opt);

  const std::string path = temp_blog("truncate_master");
  const StoreRun full = run_with_store(v, tiny.registry, opt, path, false);
  ASSERT_TRUE(full.ok) << full.error;
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream f(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(f),
                 std::istreambuf_iterator<char>());
  }
  std::remove(path.c_str());
  ASSERT_FALSE(bytes.empty());

  int resumed_ok = 0, refused = 0;
  for (std::size_t cut = 0; cut <= bytes.size(); cut += 7) {
    const std::string stub = temp_blog("truncate_cut");
    {
      std::ofstream f(stub, std::ios::binary | std::ios::trunc);
      f.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(cut));
    }
    const StoreRun run = run_with_store(v, tiny.registry, opt, stub, true);
    if (run.ok) {
      ++resumed_ok;
      expect_same_result(reference, run.result,
                         "cut@" + std::to_string(cut));
    } else {
      ++refused;
      EXPECT_EQ(run.log_status, ReadStatus::kBadHeader)
          << "cut@" << cut << ": " << run.error;
    }
    std::remove(stub.c_str());
  }
  EXPECT_GT(resumed_ok, 0);
  EXPECT_GT(refused, 0);  // the preamble/header region must refuse, not heal
}

}  // namespace
}  // namespace ballista::store
