// Tests for the Figure 2 Silent-failure voting analysis.
#include <gtest/gtest.h>

#include "core/voting.h"

namespace ballista::core {
namespace {

MuT* leak_mut(std::string name, FuncGroup group = FuncGroup::kCString) {
  auto* m = new MuT;
  m->name = std::move(name);
  m->api = ApiKind::kCLib;
  m->group = group;
  m->variant_mask = kMaskEverything;
  return m;
}

CampaignResult variant_result(sim::OsVariant v, MuT* m,
                              std::vector<CaseCode> codes) {
  CampaignResult r;
  r.variant = v;
  MutStats s;
  s.mut = m;
  s.executed = codes.size();
  s.planned = codes.size();
  s.case_codes = std::move(codes);
  r.stats.push_back(std::move(s));
  return r;
}

TEST(Voting, PassNoErrorAgainstErrorIsSilent) {
  MuT* m = leak_mut("fn");
  std::vector<CampaignResult> rs;
  rs.push_back(variant_result(sim::OsVariant::kWin95, m,
                              {CaseCode::kPassNoError, CaseCode::kPassNoError}));
  rs.push_back(variant_result(sim::OsVariant::kWinNT4, m,
                              {CaseCode::kPassWithError, CaseCode::kAbort}));
  const VotingResult v = vote_silent(rs);
  EXPECT_DOUBLE_EQ(v.per_mut[0].at("fn"), 1.0);   // both cases voted silent
  EXPECT_DOUBLE_EQ(v.per_mut[1].at("fn"), 0.0);   // NT reported properly
  EXPECT_DOUBLE_EQ(v.overall_silent[0], 1.0);
}

TEST(Voting, UnanimousPassNoErrorIsNotSilent) {
  // The paper's acknowledged blind spot: "it cannot find instances in which
  // all versions of Windows suffer a Silent failure."
  MuT* m = leak_mut("fn");
  std::vector<CampaignResult> rs;
  rs.push_back(
      variant_result(sim::OsVariant::kWin95, m, {CaseCode::kPassNoError}));
  rs.push_back(
      variant_result(sim::OsVariant::kWinNT4, m, {CaseCode::kPassNoError}));
  const VotingResult v = vote_silent(rs);
  EXPECT_DOUBLE_EQ(v.overall_silent[0], 0.0);
  EXPECT_DOUBLE_EQ(v.overall_silent[1], 0.0);
}

TEST(Voting, RestartAndHinderingCountAsErrorIndications) {
  MuT* m = leak_mut("fn");
  std::vector<CampaignResult> rs;
  rs.push_back(variant_result(sim::OsVariant::kWin95, m,
                              {CaseCode::kPassNoError, CaseCode::kPassNoError}));
  rs.push_back(variant_result(sim::OsVariant::kWin98, m,
                              {CaseCode::kRestart, CaseCode::kHindering}));
  const VotingResult v = vote_silent(rs);
  EXPECT_DOUBLE_EQ(v.per_mut[0].at("fn"), 1.0);
}

TEST(Voting, CatastrophicIsNotAnErrorIndication) {
  // A sibling's system crash yields no comparable observation.
  MuT* m = leak_mut("fn");
  std::vector<CampaignResult> rs;
  rs.push_back(
      variant_result(sim::OsVariant::kWin95, m, {CaseCode::kPassNoError}));
  rs.push_back(
      variant_result(sim::OsVariant::kWin98, m, {CaseCode::kCatastrophic}));
  const VotingResult v = vote_silent(rs);
  EXPECT_DOUBLE_EQ(v.per_mut[0].at("fn"), 0.0);
}

TEST(Voting, TruncatedRunsCompareOnlyCommonPrefix) {
  MuT* m = leak_mut("fn");
  std::vector<CampaignResult> rs;
  rs.push_back(variant_result(
      sim::OsVariant::kWin95, m,
      {CaseCode::kPassNoError, CaseCode::kPassNoError, CaseCode::kPassNoError,
       CaseCode::kPassNoError}));
  rs.push_back(variant_result(sim::OsVariant::kWin98, m,
                              {CaseCode::kPassWithError}));  // interrupted
  const VotingResult v = vote_silent(rs);
  // Only case 0 is comparable; it votes silent -> rate 1/1.
  EXPECT_DOUBLE_EQ(v.per_mut[0].at("fn"), 1.0);
}

TEST(Voting, MutMissingOnOneVariantIsExcluded) {
  MuT* a = leak_mut("everywhere");
  MuT* b = leak_mut("only95");
  std::vector<CampaignResult> rs(2);
  rs[0].variant = sim::OsVariant::kWin95;
  rs[1].variant = sim::OsVariant::kWin98;
  for (MuT* m : {a, b}) {
    MutStats s;
    s.mut = m;
    s.executed = 1;
    s.case_codes = {CaseCode::kPassNoError};
    rs[0].stats.push_back(s);
  }
  MutStats s;
  s.mut = a;
  s.executed = 1;
  s.case_codes = {CaseCode::kAbort};
  rs[1].stats.push_back(s);

  const VotingResult v = vote_silent(rs);
  EXPECT_EQ(v.per_mut[0].count("everywhere"), 1u);
  EXPECT_EQ(v.per_mut[0].count("only95"), 0u);
}

TEST(Voting, GroupAveragesAreUniform) {
  MuT* a = leak_mut("a", FuncGroup::kCString);
  MuT* b = leak_mut("b", FuncGroup::kCString);
  std::vector<CampaignResult> rs(2);
  rs[0].variant = sim::OsVariant::kWin95;
  rs[1].variant = sim::OsVariant::kWin98;
  auto add = [](CampaignResult& r, MuT* m, std::vector<CaseCode> codes) {
    MutStats s;
    s.mut = m;
    s.executed = codes.size();
    s.case_codes = std::move(codes);
    r.stats.push_back(std::move(s));
  };
  // a: 95 silent on both cases; b: silent on neither.
  add(rs[0], a, {CaseCode::kPassNoError, CaseCode::kPassNoError});
  add(rs[0], b, {CaseCode::kPassWithError, CaseCode::kPassWithError});
  add(rs[1], a, {CaseCode::kAbort, CaseCode::kAbort});
  add(rs[1], b, {CaseCode::kPassWithError, CaseCode::kPassWithError});
  const VotingResult v = vote_silent(rs);
  const std::size_t cstring_idx =
      static_cast<std::size_t>(FuncGroup::kCString) -
      static_cast<std::size_t>(FuncGroup::kMemoryManagement);
  EXPECT_DOUBLE_EQ(v.by_group[0][cstring_idx].silent_rate, 0.5);
  EXPECT_EQ(v.by_group[0][cstring_idx].functions, 2);
}

TEST(Voting, EmptyInputYieldsEmptyResult) {
  const VotingResult v = vote_silent({});
  EXPECT_TRUE(v.by_group.empty());
  EXPECT_TRUE(v.overall_silent.empty());
}

}  // namespace
}  // namespace ballista::core
