// Shared helpers for the test suite: one-off machines, call contexts and
// single-case execution against the full world catalog.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/ballista.h"
#include "harness/world.h"

namespace ballista::testing {

/// A machine plus one task plus an anonymous MuT descriptor, for exercising
/// CallContext-level behaviour directly.
struct CallFixture {
  explicit CallFixture(sim::OsVariant v,
                       core::CrashStyle hazard = core::CrashStyle::kNone)
      : machine(v) {
    proc = machine.create_process();
    mut.name = "test_fn";
    mut.api = core::ApiKind::kCLib;
    mut.variant_mask = core::kMaskEverything;
    if (hazard != core::CrashStyle::kNone) mut.hazards[v] = hazard;
  }

  core::CallContext ctx(std::vector<core::RawArg> args_in = {}) {
    args = std::move(args_in);
    return core::CallContext(machine, *proc, mut, args);
  }

  sim::Machine machine;
  std::unique_ptr<sim::SimProcess> proc;
  core::MuT mut;
  std::vector<core::RawArg> args;
};

/// Looks up a named test value in a data type's pool (fails the test if
/// absent).
inline const core::TestValue* find_value(const core::DataType& t,
                                         std::string_view name) {
  for (const core::TestValue* v : t.values())
    if (v->name == name) return v;
  ADD_FAILURE() << "no test value named " << name << " in " << t.name();
  return nullptr;
}

/// Runs one call of a registered MuT on a fresh machine, with the tuple
/// selected by value names (one per parameter).
inline core::CaseResult run_named_case(
    const harness::World& world, sim::OsVariant /*v*/,
    std::string_view mut_name, const std::vector<std::string>& value_names,
    sim::Machine* machine) {
  const core::MuT* mut = world.registry.find(mut_name);
  EXPECT_NE(mut, nullptr) << mut_name;
  EXPECT_EQ(mut->params.size(), value_names.size()) << mut_name;
  std::vector<const core::TestValue*> tuple;
  for (std::size_t i = 0; i < value_names.size(); ++i)
    tuple.push_back(find_value(*mut->params[i], value_names[i]));
  core::Executor executor(*machine);
  return executor.run_case(*mut, tuple);
}

/// Shared world built once per test binary (registration is idempotent and
/// read-only afterwards).
inline const harness::World& shared_world() {
  static const std::unique_ptr<harness::World> world = harness::build_world();
  return *world;
}

}  // namespace ballista::testing
