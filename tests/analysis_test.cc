// Tests for the per-test-value failure-attribution analysis and the CSV
// exports.
#include <gtest/gtest.h>

#include <sstream>

#include "core/analysis.h"
#include "tests/test_util.h"

namespace ballista::core {
namespace {

using sim::OsVariant;
using testing::shared_world;

class AnalysisTest : public ::testing::Test {
 protected:
  AnalysisTest() {
    auto& t = lib.make("mixed");
    t.add("good_a", false, [](ValueCtx&) { return RawArg{1}; });
    t.add("good_b", false, [](ValueCtx&) { return RawArg{2}; });
    t.add("killer", true, [](ValueCtx&) { return RawArg{0}; });

    MuT m;
    m.name = "victim";
    m.api = ApiKind::kCLib;
    m.group = FuncGroup::kCString;
    m.params = {&lib.get("mixed"), &lib.get("mixed")};
    m.variant_mask = kMaskEverything;
    m.impl = [](CallContext& ctx) -> CallOutcome {
      // Fails exactly when either argument is the "killer" value (0).
      if (ctx.arg(0) == 0 || ctx.arg(1) == 0)
        ctx.proc().mem().read_u8(0, sim::Access::kUser);
      return ok(0);
    };
    reg.add(std::move(m));
  }
  TypeLibrary lib;
  Registry reg;
};

TEST_F(AnalysisTest, AttributesFailuresToTheGuiltyValue) {
  CampaignOptions opt;
  const auto result = Campaign::run(OsVariant::kLinux, reg, opt);
  const auto a = analyze_values(result, opt.cap, opt.seed);

  // 9 combinations; 5 contain the killer -> overall 5/9.
  EXPECT_NEAR(a.overall_failure_rate, 5.0 / 9.0, 1e-9);
  ASSERT_FALSE(a.stats.empty());
  // The worst value is the killer at 100%.
  EXPECT_EQ(a.stats.front().value_name, "killer");
  EXPECT_DOUBLE_EQ(a.stats.front().failure_rate(), 1.0);
  // Benign values fail only when paired with the killer: 2/6 each... the
  // killer appears in 1 of 3 partner slots -> rate strictly below killer's.
  for (const auto& s : a.stats) {
    if (s.value_name != "killer") {
      EXPECT_LT(s.failure_rate(), 0.5) << s.value_name;
    }
  }
}

TEST_F(AnalysisTest, SuspectsFlagOnlyOutliers) {
  CampaignOptions opt;
  const auto result = Campaign::run(OsVariant::kLinux, reg, opt);
  const auto a = analyze_values(result, opt.cap, opt.seed);
  const auto sus = a.suspects(/*factor=*/1.5, /*min_cases=*/1);
  ASSERT_EQ(sus.size(), 1u);
  EXPECT_EQ(sus[0]->value_name, "killer");
}

TEST_F(AnalysisTest, CaseCountsArePerValueOccurrences) {
  CampaignOptions opt;
  const auto result = Campaign::run(OsVariant::kLinux, reg, opt);
  const auto a = analyze_values(result, opt.cap, opt.seed);
  std::uint64_t total = 0;
  for (const auto& s : a.stats) total += s.cases;
  // 9 cases x 2 parameters = 18 value occurrences.
  EXPECT_EQ(total, 18u);
}

TEST_F(AnalysisTest, PrinterAndCsvProduceOutput) {
  CampaignOptions opt;
  const auto result = Campaign::run(OsVariant::kLinux, reg, opt);
  const auto a = analyze_values(result, opt.cap, opt.seed);
  std::ostringstream text, vcsv, mcsv;
  print_value_analysis(text, a);
  write_value_csv(vcsv, a);
  write_mut_csv(mcsv, result);
  EXPECT_NE(text.str().find("killer"), std::string::npos);
  EXPECT_NE(vcsv.str().find("mixed,killer,1,"), std::string::npos);
  const std::string mut_rows = mcsv.str();
  EXPECT_NE(mut_rows.find("victim"), std::string::npos);
  // CSV header + one row per MuT.
  EXPECT_EQ(std::count(mut_rows.begin(), mut_rows.end(), '\n'), 2);
}

TEST(AnalysisWorld, CeSuspectsIncludeTheBadFilePointer) {
  // The paper's §5 attribution ("traceable to ... an invalid C file
  // pointer") falls out of the analysis automatically.
  core::CampaignOptions opt;
  opt.cap = 120;
  const auto result = Campaign::run(OsVariant::kWinCE,
                                    shared_world().registry, opt);
  const auto a = analyze_values(result, opt.cap, opt.seed);
  bool found_bad_file = false;
  for (const auto* s : a.suspects(2.0, 10)) {
    if (s->type_name == "cfile" && s->exceptional) found_bad_file = true;
  }
  EXPECT_TRUE(found_bad_file);
}

TEST(AnalysisWorld, ValidValuesAreNotSuspects) {
  core::CampaignOptions opt;
  opt.cap = 120;
  const auto result = Campaign::run(OsVariant::kLinux,
                                    shared_world().registry, opt);
  const auto a = analyze_values(result, opt.cap, opt.seed);
  for (const auto* s : a.suspects()) {
    EXPECT_NE(s->value_name, "str_hello");
    EXPECT_NE(s->value_name, "buf_64");
    EXPECT_NE(s->value_name, "fd_fixture_rw");
  }
}

}  // namespace
}  // namespace ballista::core
