// Persistent campaign store: write/read round-trips, fingerprint interlock,
// codec round-trips and the cross-run diff engine.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/diff.h"
#include "core/sched.h"
#include "store/store.h"
#include "tests/store_test_util.h"
#include "tests/test_util.h"

namespace ballista::store {
namespace {

using core::CampaignResult;
using core::MutStats;
using sim::OsVariant;
using testing::shared_world;
using testing::TinyWorld;
using testing::tiny_options;

// The pid keeps paths unique when ctest runs the gtest-discovered copy of a
// test and its aggregate entry (store_fuzz / store_resume) concurrently.
std::string temp_blog(const std::string& stem) {
  return ::testing::TempDir() + "ballista_" + stem + "." +
         std::to_string(::getpid()) + ".blog";
}

void expect_same_result(const CampaignResult& a, const CampaignResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.variant, b.variant) << label;
  EXPECT_EQ(a.reboots, b.reboots) << label;
  EXPECT_EQ(a.total_cases, b.total_cases) << label;
  EXPECT_EQ(a.event_counters, b.event_counters) << label;
  ASSERT_EQ(a.stats.size(), b.stats.size()) << label;
  for (std::size_t i = 0; i < a.stats.size(); ++i) {
    const MutStats& x = a.stats[i];
    const MutStats& y = b.stats[i];
    const std::string at = label + " / " + std::string(x.mut->name);
    EXPECT_EQ(x.mut, y.mut) << at;
    EXPECT_EQ(x.planned, y.planned) << at;
    EXPECT_EQ(x.executed, y.executed) << at;
    EXPECT_EQ(x.passes, y.passes) << at;
    EXPECT_EQ(x.aborts, y.aborts) << at;
    EXPECT_EQ(x.restarts, y.restarts) << at;
    EXPECT_EQ(x.silent_candidates, y.silent_candidates) << at;
    EXPECT_EQ(x.hindering, y.hindering) << at;
    EXPECT_EQ(x.catastrophic, y.catastrophic) << at;
    EXPECT_EQ(x.crash_case, y.crash_case) << at;
    EXPECT_EQ(x.crash_detail, y.crash_detail) << at;
    EXPECT_EQ(x.crash_tuple, y.crash_tuple) << at;
    EXPECT_EQ(x.crash_reproducible_single, y.crash_reproducible_single) << at;
    EXPECT_EQ(x.case_codes, y.case_codes) << at;
    EXPECT_EQ(x.event_counts, y.event_counts) << at;
    ASSERT_EQ(x.crash_trace.size(), y.crash_trace.size()) << at;
    for (std::size_t k = 0; k < x.crash_trace.size(); ++k) {
      EXPECT_EQ(x.crash_trace[k].kind, y.crash_trace[k].kind) << at;
      EXPECT_EQ(x.crash_trace[k].case_index, y.crash_trace[k].case_index)
          << at;
    }
  }
}

// --- write / read round trips -----------------------------------------------

TEST(Store, StoredRunMatchesPlainRunAndLoadsBack) {
  const auto& world = shared_world();
  // win98 exercises deferred-hazard chains and crash traces; nt4 the
  // splittable no-hazard plans.
  for (OsVariant v : {OsVariant::kWin98, OsVariant::kWinNT4}) {
    core::CampaignOptions opt;
    opt.cap = 25;
    const std::string label = std::string(sim::variant_name(v));
    const CampaignResult plain = core::Campaign::run(v, world.registry, opt);

    const std::string path = temp_blog("roundtrip");
    const StoreRun stored =
        run_with_store(v, world.registry, opt, path, /*resume=*/false);
    ASSERT_TRUE(stored.ok) << stored.error;
    EXPECT_EQ(stored.shards_reused, 0u) << label;
    expect_same_result(plain, stored.result, label + " stored-vs-plain");

    const StoreContents contents = read_store_file(path);
    EXPECT_EQ(contents.status, ReadStatus::kOk) << contents.error;
    EXPECT_TRUE(contents.complete) << label;
    EXPECT_EQ(contents.outcomes.size(), stored.shards_executed) << label;

    const StoreRun loaded = load_result(world.registry, path);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    expect_same_result(plain, loaded.result, label + " loaded-vs-plain");
    std::remove(path.c_str());
  }
}

TEST(Store, ShardOutcomeCodecRoundTripsEveryShard) {
  const auto& world = shared_world();
  core::CampaignOptions opt;
  opt.cap = 25;
  std::vector<core::ShardOutcome> outcomes;
  opt.on_shard_complete = [&](const core::ShardOutcome& o) {
    outcomes.push_back(o);
  };
  // win95 produces catastrophic shards, so crash traces and tuples travel
  // through the codec too.
  core::Campaign::run(OsVariant::kWin95, world.registry, opt);
  ASSERT_FALSE(outcomes.empty());

  for (const core::ShardOutcome& o : outcomes) {
    const std::vector<std::uint8_t> bytes = encode_shard_outcome(o);
    core::ShardOutcome back;
    ASSERT_TRUE(decode_shard_outcome(bytes.data(), bytes.size(), back));
    EXPECT_EQ(back.shard_index, o.shard_index);
    EXPECT_EQ(back.reboots, o.reboots);
    EXPECT_EQ(back.executed_cases, o.executed_cases);
    ASSERT_EQ(back.partials.size(), o.partials.size());
    for (std::size_t i = 0; i < o.partials.size(); ++i) {
      EXPECT_EQ(back.partials[i].stats.mut, nullptr);
      EXPECT_EQ(back.partials[i].stats.crash_trace,
                o.partials[i].stats.crash_trace);
    }
    // Re-encoding the decode must reproduce the exact bytes.
    EXPECT_EQ(encode_shard_outcome(back), bytes);
  }
}

// --- fingerprint interlock ---------------------------------------------------

TEST(Store, ResumeRejectsFingerprintMismatch) {
  const auto& world = shared_world();
  core::CampaignOptions opt;
  opt.cap = 20;
  const std::string path = temp_blog("fingerprint");
  const StoreRun first =
      run_with_store(OsVariant::kWinNT4, world.registry, opt, path, false);
  ASSERT_TRUE(first.ok) << first.error;

  // Different cap => different plan => the log must be refused, loudly.
  core::CampaignOptions other = opt;
  other.cap = 21;
  const StoreRun mismatched =
      run_with_store(OsVariant::kWinNT4, world.registry, other, path, true);
  EXPECT_FALSE(mismatched.ok);
  EXPECT_NE(mismatched.error.find("cap"), std::string::npos)
      << mismatched.error;

  // Different variant is also a different fingerprint.
  const StoreRun wrong_os =
      run_with_store(OsVariant::kLinux, world.registry, opt, path, true);
  EXPECT_FALSE(wrong_os.ok);

  // A registry whose value pool differs must be refused too.
  TinyWorld tiny;
  const StoreRun wrong_registry =
      run_with_store(OsVariant::kWinNT4, tiny.registry, opt, path, true);
  EXPECT_FALSE(wrong_registry.ok);
  std::remove(path.c_str());
}

TEST(Store, LoadRejectsIncompleteAndBogusLogs) {
  const auto& world = shared_world();
  const std::string path = temp_blog("incomplete");

  // Header-only log: never sealed.
  {
    core::CampaignOptions opt;
    opt.cap = 20;
    const core::Plan plan =
        core::plan_for(OsVariant::kWinNT4, world.registry, opt);
    std::string err;
    auto log = CampaignStore::create(path, make_run_header(plan, opt), &err);
    ASSERT_NE(log, nullptr) << err;
  }
  const StoreRun incomplete = load_result(world.registry, path);
  EXPECT_FALSE(incomplete.ok);
  EXPECT_NE(incomplete.error.find("incomplete"), std::string::npos)
      << incomplete.error;

  // Not a log at all.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "definitely not a campaign log";
  }
  const StoreRun bogus = load_result(world.registry, path);
  EXPECT_FALSE(bogus.ok);
  EXPECT_EQ(bogus.log_status, ReadStatus::kBadHeader);

  const StoreRun missing = load_result(world.registry, path + ".nope");
  EXPECT_FALSE(missing.ok);
  std::remove(path.c_str());
}

TEST(Store, StoreRefusesAmbientStateCampaigns) {
  const auto& world = shared_world();
  core::CampaignOptions opt;
  opt.cap = 20;
  opt.machine_setup = [](sim::Machine&) {};
  const StoreRun run = run_with_store(OsVariant::kWinNT4, world.registry, opt,
                                      temp_blog("ambient"), false);
  EXPECT_FALSE(run.ok);
}

// --- cross-run diffing -------------------------------------------------------

TEST(StoreDiff, IdenticalRunsShowNoDrift) {
  const auto& world = shared_world();
  core::CampaignOptions opt;
  opt.cap = 25;
  const CampaignResult a =
      core::Campaign::run(OsVariant::kWin2000, world.registry, opt);
  const core::CampaignDiff d = core::diff_campaigns(a, a);
  EXPECT_TRUE(d.identical());
  EXPECT_EQ(d.total_verdict_changes(), 0u);
  EXPECT_GT(d.muts_compared, 0u);
  EXPECT_GT(d.cases_compared, 0u);
}

TEST(StoreDiff, PerturbedBehaviourIsPinpointedToExactCases) {
  TinyWorld baseline;
  TinyWorld perturbed(/*perturb=*/true);
  const core::CampaignOptions opt = tiny_options();
  const CampaignResult before =
      core::Campaign::run(OsVariant::kWinNT4, baseline.registry, opt);
  const CampaignResult after =
      core::Campaign::run(OsVariant::kWinNT4, perturbed.registry, opt);

  const core::CampaignDiff d = core::diff_campaigns(before, after);
  ASSERT_EQ(d.drift.size(), 1u);
  const core::MutDrift& m = d.drift.front();
  EXPECT_EQ(m.mut, "tiny_probe");
  EXPECT_TRUE(m.has(core::DriftKind::kVerdictChanged));
  // Exactly the one perturbed tuple (value v3 at case index 3) flipped.
  ASSERT_EQ(m.cases.size(), 1u);
  EXPECT_EQ(m.cases[0].case_index, 3u);
  EXPECT_EQ(m.cases[0].before, core::CaseCode::kPassNoError);
  EXPECT_EQ(m.cases[0].after, core::CaseCode::kHindering);
  EXPECT_EQ(d.total_verdict_changes(), 1u);
}

TEST(StoreDiff, AddedAndRemovedMutsAreReported) {
  TinyWorld tiny;
  const core::CampaignOptions opt = tiny_options();
  const CampaignResult both =
      core::Campaign::run(OsVariant::kWinNT4, tiny.registry, opt);
  ASSERT_EQ(both.stats.size(), 2u);

  // A run missing tiny_echo: drop its stats rather than rebuild a registry.
  CampaignResult less = both;
  less.stats.erase(less.stats.begin() + 1);

  const core::CampaignDiff removed = core::diff_campaigns(both, less);
  ASSERT_EQ(removed.drift.size(), 1u);
  EXPECT_EQ(removed.drift[0].mut, "tiny_echo");
  EXPECT_TRUE(removed.drift[0].has(core::DriftKind::kMutRemoved));

  const core::CampaignDiff added = core::diff_campaigns(less, both);
  ASSERT_EQ(added.drift.size(), 1u);
  EXPECT_TRUE(added.drift[0].has(core::DriftKind::kMutAdded));
}

TEST(StoreDiff, SealedLogsDiffLikeInMemoryResults) {
  // The end-to-end path the CLI uses: two stored runs, loaded back, diffed.
  TinyWorld baseline;
  TinyWorld perturbed(/*perturb=*/true);
  const core::CampaignOptions opt = tiny_options();
  const std::string path_a = temp_blog("diff_a");
  const std::string path_b = temp_blog("diff_b");

  const StoreRun a = run_with_store(OsVariant::kWinNT4, baseline.registry, opt,
                                    path_a, false);
  const StoreRun b = run_with_store(OsVariant::kWinNT4, perturbed.registry,
                                    opt, path_b, false);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;

  const StoreRun la = load_result(baseline.registry, path_a);
  const StoreRun lb = load_result(perturbed.registry, path_b);
  ASSERT_TRUE(la.ok) << la.error;
  ASSERT_TRUE(lb.ok) << lb.error;

  const core::CampaignDiff d = core::diff_campaigns(la.result, lb.result);
  EXPECT_EQ(d.total_verdict_changes(), 1u);
  ASSERT_EQ(d.drift.size(), 1u);
  EXPECT_EQ(d.drift[0].mut, "tiny_probe");

  EXPECT_TRUE(core::diff_campaigns(la.result, la.result).identical());
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace ballista::store
