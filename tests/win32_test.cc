// Tests for the simulated Win32 API: handle discipline, per-variant handle
// behaviour, file and I/O semantics, waits, and the Table 3 hazard wiring.
#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "win32/win32.h"

namespace ballista::win32 {
namespace {

using ballista::testing::run_named_case;
using ballista::testing::shared_world;
using core::Outcome;
using sim::OsVariant;

TEST(Handles, InvalidHandleSplitsByFamily) {
  const auto& w = shared_world();
  // NT: ERROR_INVALID_HANDLE reported.
  sim::Machine nt(OsVariant::kWinNT4);
  const auto rn =
      run_named_case(w, OsVariant::kWinNT4, "CloseHandle", {"h_garbage"}, &nt);
  EXPECT_EQ(rn.outcome, Outcome::kPass);
  EXPECT_FALSE(rn.success_no_error);
  // 9x: the stub "succeeds" silently.
  sim::Machine w95(OsVariant::kWin95);
  const auto r9 =
      run_named_case(w, OsVariant::kWin95, "CloseHandle", {"h_garbage"}, &w95);
  EXPECT_EQ(r9.outcome, Outcome::kPass);
  EXPECT_TRUE(r9.success_no_error);
}

TEST(Handles, ValidHandleClosesEverywhere) {
  const auto& w = shared_world();
  for (OsVariant v : {OsVariant::kWinNT4, OsVariant::kWin95,
                      OsVariant::kWinCE}) {
    sim::Machine m(v);
    EXPECT_EQ(
        run_named_case(w, v, "CloseHandle", {"h_file_valid"}, &m).outcome,
        Outcome::kPass);
  }
}

TEST(Handles, WrongKindIsInvalid) {
  const auto& w = shared_world();
  sim::Machine nt(OsVariant::kWinNT4);
  // SetEvent on a file handle: ERROR_INVALID_HANDLE.
  const auto r =
      run_named_case(w, OsVariant::kWinNT4, "SetEvent", {"h_file_valid"}, &nt);
  EXPECT_FALSE(r.success_no_error);
}

TEST(CreateFileCall, DispositionsBehave) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinNT4);
  // OPEN_EXISTING (3) needs cnt pool... use CREATE_NEW=1 on an existing file.
  const auto r = run_named_case(
      w, OsVariant::kWinNT4, "CreateFile",
      {"path_fixture", "flags_1", "flags_0", "sa_null_ok", "cnt_1", "flags_0",
       "h_null"},
      &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_FALSE(r.success_no_error);  // ERROR_FILE_EXISTS
  const auto r2 = run_named_case(
      w, OsVariant::kWinNT4, "CreateFile",
      {"path_missing", "flags_1", "flags_0", "sa_null_ok", "cnt_1", "flags_0",
       "h_null"},
      &m);
  EXPECT_TRUE(r2.success_no_error);  // created
}

TEST(Paths, NtBadPathPointerAbortsLoose9xSilent) {
  const auto& w = shared_world();
  sim::Machine nt(OsVariant::kWinNT4);
  EXPECT_EQ(
      run_named_case(w, OsVariant::kWinNT4, "DeleteFile", {"str_null"}, &nt)
          .outcome,
      Outcome::kAbort);
  sim::Machine w95(OsVariant::kWin95);
  const auto r =
      run_named_case(w, OsVariant::kWin95, "DeleteFile", {"str_null"}, &w95);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_TRUE(r.success_no_error);
}

TEST(Paths, LongPathIsRejectedWithError) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinNT4);
  const auto r =
      run_named_case(w, OsVariant::kWinNT4, "DeleteFile", {"path_long"}, &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_FALSE(r.success_no_error);
}

TEST(FileIo, ReadWriteRoundTrip) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinNT4);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "WriteFile",
                           {"h_file_valid", "cbuf_64", "size_16", "buf_64",
                            "buf_null"},
                           &m)
                .outcome,
            Outcome::kPass);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "ReadFile",
                           {"h_file_valid", "buf_64", "size_16", "buf_64",
                            "buf_null"},
                           &m)
                .outcome,
            Outcome::kPass);
}

TEST(FileIo, WriteToReadOnlyHandleReportsError) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinNT4);
  const auto r = run_named_case(w, OsVariant::kWinNT4, "WriteFile",
                                {"h_file_ro", "cbuf_64", "size_16", "buf_64",
                                 "buf_null"},
                                &m);
  EXPECT_FALSE(r.success_no_error);
}

TEST(FileIo, LockConflictsDetected) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinNT4);
  // Locking twice through two cases uses separate tasks/handles, so conflict
  // state does not persist (each case resets the fixture).  Exercise both
  // paths inline instead: valid lock is a pass.
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "LockFile",
                           {"h_file_valid", "size_0", "size_0", "size_16",
                            "size_0"},
                           &m)
                .outcome,
            Outcome::kPass);
  // Zero-length lock is an error.
  const auto r = run_named_case(w, OsVariant::kWinNT4, "LockFile",
                                {"h_file_valid", "size_0", "size_0", "size_0",
                                 "size_0"},
                                &m);
  EXPECT_FALSE(r.success_no_error);
}

TEST(Waits, SignaledObjectReturnsImmediately) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinNT4);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "WaitForSingleObject",
                           {"h_event_valid", "to_100"}, &m)
                .outcome,
            Outcome::kPass);
}

TEST(Waits, UnsignaledInfiniteWaitIsRestart) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinNT4);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "WaitForSingleObject",
                           {"h_event_unsignaled", "to_infinite"}, &m)
                .outcome,
            Outcome::kRestart);
}

TEST(Waits, UnsignaledFiniteWaitTimesOut) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinNT4);
  const auto r = run_named_case(w, OsVariant::kWinNT4, "WaitForSingleObject",
                                {"h_event_unsignaled", "to_100"}, &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);
}

TEST(Waits, CountValidationInMultiWaits) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinNT4);
  const auto r = run_named_case(
      w, OsVariant::kWinNT4, "WaitForMultipleObjects",
      {"cnt_65", "harr_two_signaled", "int_0", "to_100"}, &m);
  EXPECT_FALSE(r.success_no_error);  // > MAXIMUM_WAIT_OBJECTS
}

TEST(Table3Hazards, WiredExactlyAsThePaperReports) {
  const auto& w = shared_world();
  const auto style = [&](const char* name, OsVariant v) {
    return w.registry.find(name)->hazard_on(v);
  };
  using core::CrashStyle;
  // GetThreadContext: 95/98/98SE/CE immediate.
  for (OsVariant v : {OsVariant::kWin95, OsVariant::kWin98,
                      OsVariant::kWin98SE, OsVariant::kWinCE})
    EXPECT_EQ(style("GetThreadContext", v), CrashStyle::kImmediate);
  EXPECT_EQ(style("GetThreadContext", OsVariant::kWinNT4), CrashStyle::kNone);
  // HeapCreate and FileTimeToSystemTime: 95 only.
  EXPECT_EQ(style("HeapCreate", OsVariant::kWin95), CrashStyle::kImmediate);
  EXPECT_EQ(style("HeapCreate", OsVariant::kWin98), CrashStyle::kNone);
  EXPECT_EQ(style("FileTimeToSystemTime", OsVariant::kWin95),
            CrashStyle::kImmediate);
  // DuplicateHandle: starred on all of 95/98/98SE.
  for (OsVariant v : {OsVariant::kWin95, OsVariant::kWin98,
                      OsVariant::kWin98SE})
    EXPECT_EQ(style("DuplicateHandle", v), CrashStyle::kDeferred);
  // MsgWaitForMultipleObjectsEx: not on 95, deferred on 98/98SE/CE.
  EXPECT_FALSE(w.registry.find("MsgWaitForMultipleObjectsEx")
                   ->supported_on(OsVariant::kWin95));
  EXPECT_EQ(style("MsgWaitForMultipleObjectsEx", OsVariant::kWin98),
            CrashStyle::kDeferred);
  // CreateThread: 98SE and CE only.
  EXPECT_EQ(style("CreateThread", OsVariant::kWin98), CrashStyle::kNone);
  EXPECT_EQ(style("CreateThread", OsVariant::kWin98SE),
            CrashStyle::kDeferred);
  EXPECT_EQ(style("CreateThread", OsVariant::kWinCE), CrashStyle::kDeferred);
  // Interlocked trio: CE only.
  EXPECT_EQ(style("InterlockedExchange", OsVariant::kWinCE),
            CrashStyle::kDeferred);
  EXPECT_EQ(style("InterlockedExchange", OsVariant::kWin98),
            CrashStyle::kNone);
  // VirtualAlloc / SetThreadContext: CE immediate.
  EXPECT_EQ(style("VirtualAlloc", OsVariant::kWinCE), CrashStyle::kImmediate);
  EXPECT_EQ(style("SetThreadContext", OsVariant::kWinCE),
            CrashStyle::kImmediate);
}

TEST(Listing1, CrashMatrixRegression) {
  const auto& w = shared_world();
  const std::vector<std::string> tuple = {"h_thread_pseudo", "buf_null"};
  const auto expect = [&](OsVariant v, Outcome want) {
    sim::Machine m(v);
    const auto r = run_named_case(w, v, "GetThreadContext", tuple, &m);
    EXPECT_EQ(r.outcome, want) << sim::variant_name(v);
  };
  expect(OsVariant::kWin95, Outcome::kCatastrophic);
  expect(OsVariant::kWin98, Outcome::kCatastrophic);
  expect(OsVariant::kWin98SE, Outcome::kCatastrophic);
  expect(OsVariant::kWinCE, Outcome::kCatastrophic);
  expect(OsVariant::kWinNT4, Outcome::kAbort);
  expect(OsVariant::kWin2000, Outcome::kAbort);
}

TEST(GetThreadContext, ValidBufferWorksEvenOn9x) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWin98);
  EXPECT_EQ(run_named_case(w, OsVariant::kWin98, "GetThreadContext",
                           {"h_thread_pseudo", "ctx_valid_full"}, &m)
                .outcome,
            Outcome::kPass);
  EXPECT_FALSE(m.crashed());
}

TEST(Interlocked, UserModeOnDesktopKernelOnCe) {
  const auto& w = shared_world();
  sim::Machine nt(OsVariant::kWinNT4);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "InterlockedIncrement",
                           {"buf_null"}, &nt)
                .outcome,
            Outcome::kAbort);
  sim::Machine ce(OsVariant::kWinCE);
  const auto r = run_named_case(w, OsVariant::kWinCE, "InterlockedIncrement",
                                {"buf_null"}, &ce);
  // Deferred hazard: reports success, corrupts the slot space.
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_GT(ce.arena().corruption(), 0);
}

TEST(Heap, CreateAllocFreeFlow) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinNT4);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "HeapCreate",
                           {"flags_0", "size_page", "size_1meg"}, &m)
                .outcome,
            Outcome::kPass);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "HeapAlloc",
                           {"h_heap_valid", "flags_0", "size_255"}, &m)
                .outcome,
            Outcome::kPass);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "HeapFree",
                           {"h_heap_valid", "flags_0", "heap_valid_64"}, &m)
                .outcome,
            Outcome::kPass);
}

TEST(Heap, Win95HeapCreateHazardCrashesOnWildSizes) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWin95);
  EXPECT_EQ(run_named_case(w, OsVariant::kWin95, "HeapCreate",
                           {"flags_0", "size_halfmax", "size_0"}, &m)
                .outcome,
            Outcome::kCatastrophic);
}

TEST(VirtualAlloc, SemanticsAndCeCrash) {
  const auto& w = shared_world();
  sim::Machine nt(OsVariant::kWinNT4);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "VirtualAlloc",
                           {"va_null_ok", "size_page", "mem_commit",
                            "page_readwrite"},
                           &nt)
                .outcome,
            Outcome::kPass);
  const auto bad = run_named_case(w, OsVariant::kWinNT4, "VirtualAlloc",
                                  {"va_null_ok", "size_page", "mem_type_0",
                                   "page_readwrite"},
                                  &nt);
  EXPECT_FALSE(bad.success_no_error);
  sim::Machine ce(OsVariant::kWinCE);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinCE, "VirtualAlloc",
                           {"va_unmapped_user", "size_page", "mem_commit",
                            "page_readwrite"},
                           &ce)
                .outcome,
            Outcome::kCatastrophic);
}

TEST(Environment, RoundTripAndValidation) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinNT4);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "GetEnvironmentVariable",
                           {"str_hello", "buf_page", "size_page"}, &m)
                .outcome,
            Outcome::kPass);  // not found -> error reported (still a Pass)
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "SetEnvironmentVariable",
                           {"str_hello", "str_long"}, &m)
                .outcome,
            Outcome::kPass);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "GetVersion", {}, &m)
                .outcome,
            Outcome::kPass);
}

TEST(FindFiles, EnumerationWorks) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinNT4);
  // "/tmp" as a pattern names the directory itself; FindFirstFile with the
  // fixture path matches one file.
  const auto r = run_named_case(w, OsVariant::kWinNT4, "FindFirstFile",
                                {"path_fixture", "buf_page"}, &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_TRUE(r.success_no_error);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "FindNextFile",
                           {"h_find_valid", "buf_page"}, &m)
                .outcome,
            Outcome::kPass);
}

TEST(FileTimes, ConversionRoundTripAndWin95Crash) {
  const auto& w = shared_world();
  sim::Machine nt(OsVariant::kWinNT4);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "FileTimeToSystemTime",
                           {"ft_valid_1999", "st_valid"}, &nt)
                .outcome,
            Outcome::kPass);
  sim::Machine w95(OsVariant::kWin95);
  EXPECT_EQ(run_named_case(w, OsVariant::kWin95, "FileTimeToSystemTime",
                           {"ft_valid_1999", "buf_null"}, &w95)
                .outcome,
            Outcome::kCatastrophic);
}

TEST(DuplicateHandleCall, DeferredCorruptionOn98) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWin98);
  const auto r = run_named_case(
      w, OsVariant::kWin98, "DuplicateHandle",
      {"h_process_pseudo", "h_file_valid", "h_process_pseudo", "buf_dangling",
       "flags_0", "int_0", "flags_2"},
      &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);  // "succeeds"
  EXPECT_GT(m.arena().corruption(), 0);
  // On NT the same case aborts.
  sim::Machine nt(OsVariant::kWinNT4);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "DuplicateHandle",
                           {"h_process_pseudo", "h_file_valid",
                            "h_process_pseudo", "buf_dangling", "flags_0",
                            "int_0", "flags_2"},
                           &nt)
                .outcome,
            Outcome::kAbort);
}

TEST(Win95Subset, TheTenMissingCalls) {
  const auto& w = shared_world();
  const char* kMissing[] = {
      "MsgWaitForMultipleObjectsEx", "ReadFileEx", "WriteFileEx",
      "LockFileEx", "UnlockFileEx", "CopyFileEx", "GetFileAttributesEx",
      "GetDiskFreeSpaceEx", "InterlockedExchangeAdd",
      "InterlockedCompareExchange"};
  for (const char* name : kMissing) {
    const core::MuT* m = w.registry.find(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_FALSE(m->supported_on(OsVariant::kWin95)) << name;
    EXPECT_TRUE(m->supported_on(OsVariant::kWin98)) << name;
  }
}

}  // namespace
}  // namespace ballista::win32
