// Property test: a robustness-testing harness should itself be robust.  The
// wire decoder must never crash or accept garbage silently — for any byte
// string, decode() either returns nullopt or a message that re-encodes to
// the exact same frame.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "rpc/channel.h"
#include "rpc/protocol.h"

namespace ballista::rpc {
namespace {

class ProtocolFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolFuzz, DecodeNeverCrashesAndRoundTripsWhenItAccepts) {
  SplitMix64 rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = rng.next_below(64);
    Frame frame(len);
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.next());
    // Bias some frames toward valid-looking types so the accept path is
    // exercised too (all twelve v1+v2 tags).
    if (!frame.empty() && iter % 3 == 0)
      frame[0] = static_cast<std::uint8_t>(1 + rng.next_below(12));
    const auto msg = decode(frame);
    if (msg.has_value()) {
      EXPECT_EQ(encode(*msg), frame)
          << "accepted frame must round-trip byte-for-byte";
    }
  }
}

TEST_P(ProtocolFuzz, TruncationsOfValidFramesAreRejectedOrConsistent) {
  SplitMix64 rng(GetParam() ^ 0xabcdef);
  const Message m{TestResult{"GetThreadContext", rng.next_below(10000),
                             core::CaseCode::kAbort, "detail text"}};
  const Frame full = encode(m);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const Frame truncated(full.begin(),
                          full.begin() + static_cast<std::ptrdiff_t>(cut));
    const auto msg = decode(truncated);
    if (msg.has_value()) {
      EXPECT_EQ(encode(*msg), truncated);
    }
  }
}

TEST_P(ProtocolFuzz, TruncationsOfShardResultFramesAreRejectedOrConsistent) {
  SplitMix64 rng(GetParam() ^ 0x5a5a5a);
  ShardResult sr;
  sr.mut_name = "strncpy";
  sr.first = rng.next_below(10000);
  for (int i = 0; i < 9; ++i)
    sr.codes.push_back(static_cast<core::CaseCode>(rng.next_below(6)));
  sr.crashed = true;
  sr.detail = "delayed failure from corrupted shared arena";
  const Frame full = encode(Message{std::move(sr)});
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const Frame truncated(full.begin(),
                          full.begin() + static_cast<std::ptrdiff_t>(cut));
    const auto msg = decode(truncated);
    if (msg.has_value()) {
      EXPECT_EQ(encode(*msg), truncated);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz,
                         ::testing::Values(1, 42, 0xdeadbeef, 7777));

}  // namespace
}  // namespace ballista::rpc
