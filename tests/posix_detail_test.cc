// Deeper semantic tests for the POSIX layer, driven through direct dispatch.
#include <gtest/gtest.h>

#include "posix/posix.h"
#include "tests/test_util.h"

namespace ballista::posix_api {
namespace {

using core::CallOutcome;
using core::RawArg;
using sim::OsVariant;
using testing::shared_world;

class PosixFixture : public ::testing::Test {
 protected:
  PosixFixture() : machine(OsVariant::kLinux) {
    proc = machine.create_process();
  }

  CallOutcome call(const char* name, std::vector<RawArg> args) {
    const core::MuT* mut = shared_world().registry.find(name);
    EXPECT_NE(mut, nullptr) << name;
    last_args = std::move(args);
    core::CallContext ctx(machine, *proc, *mut, last_args);
    machine.kernel_enter();
    return mut->impl(ctx);
  }

  sim::Addr cstr(std::string_view s) { return proc->mem().alloc_cstr(s); }

  sim::Machine machine;
  std::unique_ptr<sim::SimProcess> proc;
  std::vector<RawArg> last_args;
};

TEST_F(PosixFixture, OpenReadWriteCloseFlow) {
  const auto fd = call("open", {cstr("/tmp/flow.txt"), 0x42 /*O_RDWR|O_CREAT*/,
                                0644});
  ASSERT_EQ(fd.status, core::CallStatus::kSuccess);
  const sim::Addr data = cstr("posix!");
  EXPECT_EQ(call("write", {fd.ret, data, 6}).ret, 6u);
  EXPECT_EQ(call("lseek", {fd.ret, 0, 0}).ret, 0u);
  const sim::Addr buf = proc->mem().alloc(16);
  EXPECT_EQ(call("read", {fd.ret, buf, 6}).ret, 6u);
  EXPECT_EQ(proc->mem().read_cstr(buf, 6, sim::Access::kKernel), "posix!");
  EXPECT_EQ(call("close", {fd.ret}).ret, 0u);
  EXPECT_EQ(call("close", {fd.ret}).status,
            core::CallStatus::kErrorReported);  // EBADF second time
}

TEST_F(PosixFixture, OpenExclRefusesExisting) {
  const auto r = call("open", {cstr("/tmp/fixture.dat"), 0xC2 /*CREAT|EXCL|RDWR*/,
                               0644});
  EXPECT_EQ(r.status, core::CallStatus::kErrorReported);
  EXPECT_EQ(proc->err_no(), EEXIST);
}

TEST_F(PosixFixture, OpenTruncClearsContents) {
  (void)call("open", {cstr("/tmp/fixture.dat"), 0x242 /*RDWR|CREAT|TRUNC*/,
                      0644});
  auto node = machine.fs().resolve(
      machine.fs().parse("/tmp/fixture.dat", proc->cwd()));
  EXPECT_TRUE(node->data().empty());
}

TEST_F(PosixFixture, LinkBumpsLinkCountAndSharesData) {
  EXPECT_EQ(call("link", {cstr("/tmp/fixture.dat"), cstr("/tmp/hard")}).ret,
            0u);
  auto a = machine.fs().resolve(
      machine.fs().parse("/tmp/fixture.dat", proc->cwd()));
  auto b = machine.fs().resolve(machine.fs().parse("/tmp/hard", proc->cwd()));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->nlink, 2);
  // Existing target refused.
  EXPECT_EQ(call("link", {cstr("/tmp/fixture.dat"), cstr("/tmp/hard")})
                .status,
            core::CallStatus::kErrorReported);
}

TEST_F(PosixFixture, SymlinkReadlinkRoundTrip) {
  EXPECT_EQ(
      call("symlink", {cstr("/tmp/fixture.dat"), cstr("/tmp/sym")}).ret, 0u);
  const sim::Addr buf = proc->mem().alloc(64);
  const auto n = call("readlink", {cstr("/tmp/sym"), buf, 64});
  EXPECT_EQ(n.ret, 16u);  // strlen("/tmp/fixture.dat")
  // readlink on a non-symlink: EINVAL.
  EXPECT_EQ(call("readlink", {cstr("/tmp/fixture.dat"), buf, 64}).status,
            core::CallStatus::kErrorReported);
  EXPECT_EQ(proc->err_no(), EINVAL);
}

TEST_F(PosixFixture, StatReportsSizeAndMode) {
  const sim::Addr st = proc->mem().alloc(64);
  EXPECT_EQ(call("stat", {cstr("/tmp/fixture.dat"), st}).ret, 0u);
  const std::uint32_t mode = proc->mem().read_u32(st + 4, sim::Access::kKernel);
  EXPECT_EQ(mode & 0xF000u, 0x8000u);  // regular file
  const std::uint32_t size = proc->mem().read_u32(st + 16, sim::Access::kKernel);
  EXPECT_GT(size, 0u);
  EXPECT_EQ(call("stat", {cstr("/tmp"), st}).ret, 0u);
  EXPECT_EQ(proc->mem().read_u32(st + 4, sim::Access::kKernel) & 0xF000u,
            0x4000u);  // directory
}

TEST_F(PosixFixture, AccessChecksWriteBitOnReadOnly) {
  EXPECT_EQ(call("access", {cstr("/tmp/readonly.dat"), 4 /*R_OK*/}).ret, 0u);
  EXPECT_EQ(call("access", {cstr("/tmp/readonly.dat"), 2 /*W_OK*/}).status,
            core::CallStatus::kErrorReported);
  EXPECT_EQ(proc->err_no(), EACCES);
}

TEST_F(PosixFixture, ChmodTogglesWritability) {
  EXPECT_EQ(call("chmod", {cstr("/tmp/readonly.dat"), 0644}).ret, 0u);
  EXPECT_EQ(call("access", {cstr("/tmp/readonly.dat"), 2}).ret, 0u);
  EXPECT_EQ(call("chmod", {cstr("/tmp/readonly.dat"), 0444}).ret, 0u);
  EXPECT_EQ(call("access", {cstr("/tmp/readonly.dat"), 2}).status,
            core::CallStatus::kErrorReported);
}

TEST_F(PosixFixture, TruncateGrowsAndShrinks) {
  EXPECT_EQ(call("truncate", {cstr("/tmp/fixture.dat"), 4}).ret, 0u);
  auto node = machine.fs().resolve(
      machine.fs().parse("/tmp/fixture.dat", proc->cwd()));
  EXPECT_EQ(node->data().size(), 4u);
  EXPECT_EQ(call("truncate", {cstr("/tmp/fixture.dat"), 100}).ret, 0u);
  EXPECT_EQ(node->data().size(), 100u);
}

TEST_F(PosixFixture, GetcwdReportsErange) {
  (void)call("chdir", {cstr("/tmp")});
  const sim::Addr buf = proc->mem().alloc(64);
  EXPECT_EQ(call("getcwd", {buf, 64}).ret, buf);
  EXPECT_EQ(proc->mem().read_cstr(buf, 32, sim::Access::kKernel), "/tmp");
  EXPECT_EQ(call("getcwd", {buf, 2}).status,
            core::CallStatus::kErrorReported);
  EXPECT_EQ(proc->err_no(), ERANGE);
}

TEST_F(PosixFixture, FcntlDupfdAllocatesNewDescriptor) {
  const auto fd = call("open", {cstr("/tmp/fixture.dat"), 0, 0});
  const auto dup = call("fcntl", {fd.ret, 0 /*F_DUPFD*/, 0});
  EXPECT_NE(dup.ret, fd.ret);
  EXPECT_NE(proc->handles().get(dup.ret), nullptr);
  EXPECT_EQ(call("fcntl", {fd.ret, 99, 0}).status,
            core::CallStatus::kErrorReported);  // unknown command
}

TEST_F(PosixFixture, PipeWriteThenReadMovesBytes) {
  const sim::Addr fds = proc->mem().alloc(8);
  ASSERT_EQ(call("pipe", {fds}).ret, 0u);
  const std::uint32_t rfd = proc->mem().read_u32(fds, sim::Access::kKernel);
  const std::uint32_t wfd =
      proc->mem().read_u32(fds + 4, sim::Access::kKernel);
  const sim::Addr msg = cstr("through the pipe");
  EXPECT_EQ(call("write", {wfd, msg, 16}).ret, 16u);
  const sim::Addr buf = proc->mem().alloc(32);
  EXPECT_EQ(call("read", {rfd, buf, 16}).ret, 16u);
  EXPECT_EQ(proc->mem().read_cstr(buf, 16, sim::Access::kKernel),
            "through the pipe");
}

TEST_F(PosixFixture, WaitpidWnohangOnRunningChild) {
  // fork() leaves an exited child in this model; waitpid reaps it.
  (void)call("fork", {});
  const sim::Addr status = proc->mem().alloc(8);
  const auto r = call("waitpid", {static_cast<RawArg>(-1) & 0xffffffffull,
                                  status, 1 /*WNOHANG*/});
  EXPECT_EQ(r.status, core::CallStatus::kSuccess);
  // With no children at all: ECHILD.
  auto fresh = machine.create_process();
  const core::MuT* mut = shared_world().registry.find("waitpid");
  std::vector<RawArg> args = {0, 0, 0};
  core::CallContext ctx(machine, *fresh, *mut, args);
  EXPECT_EQ(mut->impl(ctx).status, core::CallStatus::kErrorReported);
  EXPECT_EQ(fresh->err_no(), ECHILD);
}

TEST_F(PosixFixture, UmaskSilentlyMasksWildBits) {
  const auto ok_call = call("umask", {022});
  EXPECT_EQ(ok_call.status, core::CallStatus::kSuccess);
  const auto wild = call("umask", {0xffffffff});
  EXPECT_EQ(wild.status, core::CallStatus::kSilentSuccess);
}

TEST_F(PosixFixture, GetgroupsSizeProtocol) {
  EXPECT_EQ(call("getgroups", {0, 0}).ret, 1u);  // count query
  const sim::Addr buf = proc->mem().alloc(16);
  EXPECT_EQ(call("getgroups", {4, buf}).ret, 1u);
  EXPECT_EQ(proc->mem().read_u32(buf, sim::Access::kKernel), 500u);
  EXPECT_EQ(call("getgroups", {static_cast<RawArg>(-1) & 0xffffffffull, buf})
                .status,
            core::CallStatus::kErrorReported);
}

TEST_F(PosixFixture, SysconfKnownAndUnknownNames) {
  EXPECT_EQ(call("sysconf", {30}).ret, 4096u);  // _SC_PAGESIZE
  EXPECT_EQ(call("sysconf", {2}).ret, 100u);    // _SC_CLK_TCK
  EXPECT_EQ(call("sysconf", {999}).status,
            core::CallStatus::kErrorReported);
}

TEST_F(PosixFixture, OpendirReaddirSeesFixtureFiles) {
  const auto d = call("opendir", {cstr("/tmp")});
  ASSERT_EQ(d.status, core::CallStatus::kSuccess);
  std::set<std::string> names;
  for (;;) {
    const auto e = call("readdir", {d.ret});
    if (e.ret == 0) break;
    names.insert(
        proc->mem().read_cstr(e.ret + 8, 256, sim::Access::kKernel));
  }
  EXPECT_TRUE(names.count("fixture.dat"));
  EXPECT_TRUE(names.count("readonly.dat"));
  // rewinddir resets the cursor.
  EXPECT_EQ(call("rewinddir", {d.ret}).status, core::CallStatus::kSuccess);
  EXPECT_NE(call("readdir", {d.ret}).ret, 0u);
  EXPECT_EQ(call("closedir", {d.ret}).ret, 0u);
}

TEST_F(PosixFixture, MmapThenAccessThenMunmap) {
  const auto a = call("mmap", {0, 8192, 3 /*RW*/, 0x22 /*PRIVATE|ANON*/,
                               static_cast<RawArg>(-1) & 0xffffffffull, 0});
  ASSERT_EQ(a.status, core::CallStatus::kSuccess);
  proc->mem().write_u8(a.ret, 7, sim::Access::kUser);
  EXPECT_EQ(proc->mem().read_u8(a.ret, sim::Access::kUser), 7);
  EXPECT_EQ(call("munmap", {a.ret, 8192}).ret, 0u);
  EXPECT_THROW(proc->mem().read_u8(a.ret, sim::Access::kUser),
               sim::SimFault);
}

TEST_F(PosixFixture, MprotectReadOnlyBlocksWrites) {
  const auto a = call("mmap", {0, 4096, 3, 0x22,
                               static_cast<RawArg>(-1) & 0xffffffffull, 0});
  EXPECT_EQ(call("mprotect", {a.ret, 4096, 1 /*PROT_READ*/}).ret, 0u);
  EXPECT_THROW(proc->mem().write_u8(a.ret, 1, sim::Access::kUser),
               sim::SimFault);
}

}  // namespace
}  // namespace ballista::posix_api
