// Unit tests for kernel objects and handle tables.
#include <gtest/gtest.h>

#include "sim/filesystem.h"
#include "sim/kobject.h"

namespace ballista::sim {
namespace {

TEST(HandleTable, Win32NumberingIsMultiplesOfFour) {
  HandleTable t;
  const auto h1 = t.insert(std::make_shared<EventObject>(true, true, ""));
  const auto h2 = t.insert(std::make_shared<EventObject>(true, true, ""));
  EXPECT_EQ(h1, 4u);
  EXPECT_EQ(h2, 8u);
  EXPECT_TRUE(t.valid(h1));
  EXPECT_FALSE(t.valid(6));
}

TEST(HandleTable, PosixNumberingIsLowestFree) {
  HandleTable t;
  t.set_posix_numbering(true);
  EXPECT_EQ(t.insert(std::make_shared<PipeObject>()), 0u);
  EXPECT_EQ(t.insert(std::make_shared<PipeObject>()), 1u);
  EXPECT_EQ(t.insert(std::make_shared<PipeObject>()), 2u);
  t.close(1);
  EXPECT_EQ(t.insert(std::make_shared<PipeObject>()), 1u);  // reuses the gap
}

TEST(HandleTable, CloseIsIdempotentlyReported) {
  HandleTable t;
  const auto h = t.insert(std::make_shared<EventObject>(true, true, ""));
  EXPECT_TRUE(t.close(h));
  EXPECT_FALSE(t.close(h));
  EXPECT_EQ(t.get(h), nullptr);
}

TEST(HandleTable, InsertAtOverwrites) {
  HandleTable t;
  t.set_posix_numbering(true);
  auto a = std::make_shared<PipeObject>();
  auto b = std::make_shared<PipeObject>();
  t.insert(a);
  t.insert_at(0, b);
  EXPECT_EQ(t.get(0), b);
}

TEST(HandleTable, SharedObjectsSurviveOneClose) {
  HandleTable t;
  auto obj = std::make_shared<EventObject>(true, true, "ev");
  const auto h1 = t.insert(obj);
  const auto h2 = t.insert(obj);
  t.close(h1);
  EXPECT_EQ(t.get(h2)->name(), "ev");
}

TEST(FileObject, ReadWriteAdvancesPosition) {
  auto node = std::make_shared<FsNode>("f", false);
  FileObject f(node, FileObject::kAccessRead | FileObject::kAccessWrite,
               false);
  const std::uint8_t in[5] = {'h', 'e', 'l', 'l', 'o'};
  EXPECT_EQ(f.write_at(in), 5u);
  EXPECT_EQ(f.position(), 5u);
  f.set_position(0);
  std::uint8_t out[5] = {};
  EXPECT_EQ(f.read_at(out), 5u);
  EXPECT_EQ(out[4], 'o');
  EXPECT_EQ(f.read_at(out), 0u);  // at EOF
}

TEST(FileObject, AppendModeWritesAtEnd) {
  auto node = std::make_shared<FsNode>("f", false);
  node->data() = {1, 2, 3};
  FileObject f(node, FileObject::kAccessWrite, /*append=*/true);
  f.set_position(0);
  const std::uint8_t in[1] = {9};
  f.write_at(in);
  EXPECT_EQ(node->data().size(), 4u);
  EXPECT_EQ(node->data()[3], 9);
}

TEST(FileObject, SparseWriteGrowsFile) {
  auto node = std::make_shared<FsNode>("f", false);
  FileObject f(node, FileObject::kAccessWrite, false);
  f.set_position(100);
  const std::uint8_t in[1] = {7};
  f.write_at(in);
  EXPECT_EQ(node->data().size(), 101u);
  EXPECT_EQ(node->data()[50], 0);
}

TEST(SemaphoreObject, ReleaseRespectsMaximum) {
  SemaphoreObject s(1, 2, "");
  EXPECT_TRUE(s.signaled());
  EXPECT_TRUE(s.release(1));
  EXPECT_FALSE(s.release(1));  // would exceed max
  EXPECT_EQ(s.count(), 2);
  EXPECT_TRUE(s.release(-2));  // acquire twice (internal use)
  EXPECT_FALSE(s.signaled());
}

TEST(MutexObject, HeldStateTracksSignal) {
  MutexObject m(true, "");
  EXPECT_TRUE(m.held());
  EXPECT_FALSE(m.signaled());
  m.set_held(false);
  EXPECT_TRUE(m.signaled());
}

TEST(ThreadObject, StartsRunningWithStillActiveCode) {
  ThreadObject t(101, 1);
  EXPECT_FALSE(t.signaled());
  EXPECT_EQ(t.exit_code, 0x103u);  // STILL_ACTIVE
  t.context().regs[0] = 0xAA;
  EXPECT_EQ(t.context().regs[0], 0xAAu);
}

}  // namespace
}  // namespace ballista::sim
