// Unit tests for kernel objects and handle tables, plus the Win32 wait/
// pseudo-handle constants and per-personality handle dispatch the sync
// group leans on.
#include <gtest/gtest.h>

#include "sim/filesystem.h"
#include "sim/kobject.h"
#include "tests/test_util.h"
#include "win32/win32.h"

namespace ballista::sim {
namespace {

using ballista::testing::CallFixture;

TEST(HandleTable, Win32NumberingIsMultiplesOfFour) {
  HandleTable t;
  const auto h1 = t.insert(std::make_shared<EventObject>(true, true, ""));
  const auto h2 = t.insert(std::make_shared<EventObject>(true, true, ""));
  EXPECT_EQ(h1, 4u);
  EXPECT_EQ(h2, 8u);
  EXPECT_TRUE(t.valid(h1));
  EXPECT_FALSE(t.valid(6));
}

TEST(HandleTable, PosixNumberingIsLowestFree) {
  HandleTable t;
  t.set_posix_numbering(true);
  EXPECT_EQ(t.insert(std::make_shared<PipeObject>()), 0u);
  EXPECT_EQ(t.insert(std::make_shared<PipeObject>()), 1u);
  EXPECT_EQ(t.insert(std::make_shared<PipeObject>()), 2u);
  t.close(1);
  EXPECT_EQ(t.insert(std::make_shared<PipeObject>()), 1u);  // reuses the gap
}

TEST(HandleTable, CloseIsIdempotentlyReported) {
  HandleTable t;
  const auto h = t.insert(std::make_shared<EventObject>(true, true, ""));
  EXPECT_TRUE(t.close(h));
  EXPECT_FALSE(t.close(h));
  EXPECT_EQ(t.get(h), nullptr);
}

TEST(HandleTable, InsertAtOverwrites) {
  HandleTable t;
  t.set_posix_numbering(true);
  auto a = std::make_shared<PipeObject>();
  auto b = std::make_shared<PipeObject>();
  t.insert(a);
  t.insert_at(0, b);
  EXPECT_EQ(t.get(0), b);
}

TEST(HandleTable, SharedObjectsSurviveOneClose) {
  HandleTable t;
  auto obj = std::make_shared<EventObject>(true, true, "ev");
  const auto h1 = t.insert(obj);
  const auto h2 = t.insert(obj);
  t.close(h1);
  EXPECT_EQ(t.get(h2)->name(), "ev");
}

TEST(FileObject, ReadWriteAdvancesPosition) {
  auto node = std::make_shared<FsNode>("f", false);
  FileObject f(node, FileObject::kAccessRead | FileObject::kAccessWrite,
               false);
  const std::uint8_t in[5] = {'h', 'e', 'l', 'l', 'o'};
  EXPECT_EQ(f.write_at(in), 5u);
  EXPECT_EQ(f.position(), 5u);
  f.set_position(0);
  std::uint8_t out[5] = {};
  EXPECT_EQ(f.read_at(out), 5u);
  EXPECT_EQ(out[4], 'o');
  EXPECT_EQ(f.read_at(out), 0u);  // at EOF
}

TEST(FileObject, AppendModeWritesAtEnd) {
  auto node = std::make_shared<FsNode>("f", false);
  node->data() = {1, 2, 3};
  FileObject f(node, FileObject::kAccessWrite, /*append=*/true);
  f.set_position(0);
  const std::uint8_t in[1] = {9};
  f.write_at(in);
  EXPECT_EQ(node->data().size(), 4u);
  EXPECT_EQ(node->data()[3], 9);
}

TEST(FileObject, SparseWriteGrowsFile) {
  auto node = std::make_shared<FsNode>("f", false);
  FileObject f(node, FileObject::kAccessWrite, false);
  f.set_position(100);
  const std::uint8_t in[1] = {7};
  f.write_at(in);
  EXPECT_EQ(node->data().size(), 101u);
  EXPECT_EQ(node->data()[50], 0);
}

TEST(SemaphoreObject, ReleaseRespectsMaximum) {
  SemaphoreObject s(1, 2, "");
  EXPECT_TRUE(s.signaled());
  EXPECT_TRUE(s.release(1));
  EXPECT_FALSE(s.release(1));  // would exceed max
  EXPECT_EQ(s.count(), 2);
  EXPECT_TRUE(s.release(-2));  // acquire twice (internal use)
  EXPECT_FALSE(s.signaled());
}

TEST(MutexObject, HeldStateTracksSignal) {
  MutexObject m(true, "");
  EXPECT_TRUE(m.held());
  EXPECT_FALSE(m.signaled());
  m.set_held(false);
  EXPECT_TRUE(m.signaled());
}

TEST(ThreadObject, StartsRunningWithStillActiveCode) {
  ThreadObject t(101, 1);
  EXPECT_FALSE(t.signaled());
  EXPECT_EQ(t.exit_code, 0x103u);  // STILL_ACTIVE
  t.context().regs[0] = 0xAA;
  EXPECT_EQ(t.context().regs[0], 0xAAu);
}

TEST(WaitConstants, MatchTheWin32Abi) {
  EXPECT_EQ(win32::WAIT_OBJECT_0, 0u);
  EXPECT_EQ(win32::WAIT_TIMEOUT, 0x102u);
  EXPECT_EQ(win32::WAIT_FAILED, 0xffffffffu);
  EXPECT_EQ(win32::INFINITE32, 0xffffffffu);
  // GetCurrentProcess() and INVALID_HANDLE_VALUE share a bit pattern — the
  // classic Win32 footgun the h_sync pools exercise on purpose.
  EXPECT_EQ(win32::kPseudoCurrentProcess, 0xffffffffull);
  EXPECT_EQ(win32::kPseudoCurrentThread, 0xfffffffeull);
  EXPECT_EQ(win32::INVALID_HANDLE_VALUE32, win32::kPseudoCurrentProcess);
}

TEST(EventObject, ManualVsAutoResetState) {
  EventObject manual(/*manual_reset=*/true, /*initial=*/true, "");
  EXPECT_TRUE(manual.manual_reset());
  EXPECT_TRUE(manual.signaled());
  manual.set_signaled(false);  // ResetEvent
  EXPECT_FALSE(manual.signaled());

  EventObject auto_ev(/*manual_reset=*/false, /*initial=*/false, "");
  EXPECT_FALSE(auto_ev.manual_reset());
  EXPECT_FALSE(auto_ev.signaled());
  auto_ev.set_signaled(true);  // SetEvent; a successful wait clears it
  EXPECT_TRUE(auto_ev.signaled());
}

TEST(MutexObject, FreeMutexIsSignaled) {
  MutexObject m(/*initially_owned=*/false, "");
  EXPECT_FALSE(m.held());
  EXPECT_TRUE(m.signaled());
  m.set_held(true);  // a successful wait acquires it
  EXPECT_FALSE(m.signaled());
}

TEST(SemaphoreObject, DrainedSemaphoreIsNotSignaled) {
  SemaphoreObject s(0, 4, "");
  EXPECT_FALSE(s.signaled());
  EXPECT_TRUE(s.release(1));
  EXPECT_TRUE(s.signaled());
  EXPECT_FALSE(s.release(4));  // 1 + 4 > max: ERROR_TOO_MANY_POSTS shape
  EXPECT_TRUE(s.release(3));   // exactly to the maximum is fine
  EXPECT_EQ(s.count(), 4);
}

// The sync group's handle checks must dispatch identically on every variant:
// pseudo-handles resolve to the current process/thread objects everywhere.
TEST(CheckHandle, PseudoHandlesResolveOnEveryWindowsVariant) {
  for (OsVariant v : kAllVariants) {
    if (v == OsVariant::kLinux) continue;
    CallFixture f(v);
    auto ctx = f.ctx();
    const auto pc = win32::check_handle(ctx, win32::kPseudoCurrentProcess);
    EXPECT_FALSE(pc.fail) << variant_name(v);
    EXPECT_EQ(pc.obj, f.proc->self_object()) << variant_name(v);
    const auto pt = win32::check_handle(ctx, win32::kPseudoCurrentThread);
    EXPECT_FALSE(pt.fail) << variant_name(v);
    EXPECT_EQ(pt.obj, f.proc->main_thread()) << variant_name(v);
  }
}

// A bad or wrong-kind handle splits by personality: the NT/CE families report
// ERROR_INVALID_HANDLE, the loose Win9x stubs report success having done
// nothing (the Silent failures Figure 2's voting surfaces).
TEST(CheckHandle, BadHandleDispatchesPerPersonality) {
  for (OsVariant v : kAllVariants) {
    if (v == OsVariant::kLinux) continue;
    CallFixture f(v);
    // A kind mismatch must fail like a stale handle: an event handle is not
    // a mutex.
    const auto h =
        f.proc->handles().insert(std::make_shared<EventObject>(true, true, ""));
    auto ctx = f.ctx();
    const auto stale = win32::check_handle(ctx, 0x4444, ObjectKind::kEvent);
    const auto wrong = win32::check_handle(ctx, h, ObjectKind::kMutex);
    for (const auto* r : {&stale, &wrong}) {
      EXPECT_EQ(r->obj, nullptr) << variant_name(v);
      ASSERT_TRUE(r->fail.has_value()) << variant_name(v);
      if (personality_for(v).pointer_policy == PointerPolicy::kStubCheckLoose) {
        EXPECT_EQ(r->fail->status, core::CallStatus::kSilentSuccess)
            << variant_name(v);
      } else {
        EXPECT_EQ(r->fail->status, core::CallStatus::kErrorReported)
            << variant_name(v);
        EXPECT_EQ(f.proc->last_error(), win32::ERR_INVALID_HANDLE)
            << variant_name(v);
      }
    }
  }
}

}  // namespace
}  // namespace ballista::sim
