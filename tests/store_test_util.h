// Shared fixtures for the persistent-store tests: a deliberately tiny
// registry (two MuTs over one 8-value pool) so kill/truncate/fuzz loops can
// afford dense coverage — every byte boundary, every shard — in milliseconds,
// plus an optional single-case behaviour perturbation for the diff tests.
#pragma once

#include <string>

#include "core/ballista.h"
#include "core/sched.h"

namespace ballista::testing {

/// Self-contained world: `registry` draws from `ints` only.  With
/// `perturb == true`, tiny_probe's behaviour flips for exactly one value
/// (v3: pass-no-error -> hindering), which a cross-run diff must pinpoint.
struct TinyWorld {
  core::DataType ints{"tiny_int"};
  core::Registry registry;

  explicit TinyWorld(bool perturb = false) {
    for (int i = 0; i < 8; ++i)
      ints.add("v" + std::to_string(i), /*exceptional=*/i >= 6,
               [i](core::ValueCtx&) { return static_cast<core::RawArg>(i); });

    core::MuT probe;
    probe.name = "tiny_probe";
    probe.api = core::ApiKind::kCLib;
    probe.group = core::FuncGroup::kCString;
    probe.params = {&ints};
    probe.variant_mask = core::kMaskEverything;
    probe.impl = [perturb](core::CallContext& ctx) {
      const core::RawArg v = ctx.arg(0);
      if (perturb && v == 3) return core::wrong_error(1);
      return v % 2 == 0 ? core::error_reported(1)
                        : core::ok(static_cast<std::uint64_t>(v));
    };
    registry.add(std::move(probe));

    core::MuT echo;
    echo.name = "tiny_echo";
    echo.api = core::ApiKind::kCLib;
    echo.group = core::FuncGroup::kCMemory;
    echo.params = {&ints};
    echo.variant_mask = core::kMaskEverything;
    echo.impl = [](core::CallContext&) { return core::error_reported(1); };
    registry.add(std::move(echo));
  }
};

/// Options that split the tiny registry into several shards, so resume and
/// truncation tests see real multi-shard logs.
inline core::CampaignOptions tiny_options() {
  core::CampaignOptions opt;
  opt.cap = 16;
  opt.shard_cases = 3;
  return opt;
}

}  // namespace ballista::testing
