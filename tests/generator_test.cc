// Tests for tuple generation: exhaustive enumeration, the 5000-test cap,
// and the cross-variant determinism Figure 2's voting depends on.
#include <gtest/gtest.h>

#include <set>

#include "core/generator.h"
#include "core/typelib.h"

namespace ballista::core {
namespace {

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest() {
    register_base_types(lib);
    small.name = "small_fn";
    small.params = {&lib.get("int"), &lib.get("char_int")};
    wide.name = "wide_fn";
    wide.params = {&lib.get("buf"), &lib.get("cstr"), &lib.get("size"),
                   &lib.get("flags32"), &lib.get("timeout_ms")};
  }
  TypeLibrary lib;
  MuT small, wide;
};

TEST_F(GeneratorTest, ExhaustiveWhenUnderCap) {
  TupleGenerator gen(small);
  const std::size_t expect =
      lib.get("int").value_count() * lib.get("char_int").value_count();
  EXPECT_TRUE(gen.exhaustive());
  EXPECT_EQ(gen.count(), expect);
  EXPECT_EQ(gen.combination_count(), expect);
}

TEST_F(GeneratorTest, ExhaustiveCoversEveryCombinationOnce) {
  TupleGenerator gen(small);
  std::set<std::pair<const TestValue*, const TestValue*>> seen;
  for (std::uint64_t i = 0; i < gen.count(); ++i) {
    const auto t = gen.tuple(i);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_TRUE(seen.emplace(t[0], t[1]).second) << "duplicate at " << i;
  }
  EXPECT_EQ(seen.size(), gen.count());
}

TEST_F(GeneratorTest, CappedWhenCombinationsExplode) {
  TupleGenerator gen(wide, 5000);
  EXPECT_FALSE(gen.exhaustive());
  EXPECT_EQ(gen.count(), 5000u);
  EXPECT_GT(gen.combination_count(), 5000u);
}

TEST_F(GeneratorTest, SamplingIsDeterministicAcrossInstances) {
  TupleGenerator a(wide, 5000), b(wide, 5000);
  for (std::uint64_t i : {0ull, 1ull, 17ull, 4999ull})
    EXPECT_EQ(a.tuple(i), b.tuple(i));
}

TEST_F(GeneratorTest, SamplingIsStatelessPerIndex) {
  TupleGenerator gen(wide, 5000);
  const auto t42 = gen.tuple(42);
  (void)gen.tuple(4000);
  (void)gen.tuple(3);
  EXPECT_EQ(gen.tuple(42), t42);
}

TEST_F(GeneratorTest, DifferentMutsSampleDifferently) {
  MuT other = wide;
  other.name = "other_fn";
  TupleGenerator a(wide, 5000), b(other, 5000);
  int differing = 0;
  for (std::uint64_t i = 0; i < 50; ++i)
    if (a.tuple(i) != b.tuple(i)) ++differing;
  EXPECT_GT(differing, 25);  // overwhelmingly different streams
}

TEST_F(GeneratorTest, SeedChangesTheStream) {
  TupleGenerator a(wide, 5000, 1), b(wide, 5000, 2);
  int differing = 0;
  for (std::uint64_t i = 0; i < 50; ++i)
    if (a.tuple(i) != b.tuple(i)) ++differing;
  EXPECT_GT(differing, 25);
}

TEST_F(GeneratorTest, SampledValuesComeFromTheRightPools) {
  TupleGenerator gen(wide, 200);
  const auto pool0 = lib.get("buf").values();
  for (std::uint64_t i = 0; i < gen.count(); ++i) {
    const auto t = gen.tuple(i);
    EXPECT_NE(std::find(pool0.begin(), pool0.end(), t[0]), pool0.end());
  }
}

TEST_F(GeneratorTest, SamplingHitsEveryPoolValueEventually) {
  TupleGenerator gen(wide, 5000);
  std::set<const TestValue*> seen;
  for (std::uint64_t i = 0; i < gen.count(); ++i)
    seen.insert(gen.tuple(i)[0]);
  EXPECT_EQ(seen.size(), lib.get("buf").value_count());
}

TEST_F(GeneratorTest, ZeroParameterMutYieldsOneEmptyTuple) {
  MuT nullary;
  nullary.name = "nullary";
  TupleGenerator gen(nullary);
  EXPECT_EQ(gen.count(), 1u);
  EXPECT_TRUE(gen.tuple(0).empty());
}

// --- batched cursor API -----------------------------------------------------

TEST_F(GeneratorTest, CursorMatchesStatelessTupleOnExhaustiveStream) {
  TupleGenerator gen(small);
  ASSERT_TRUE(gen.exhaustive());
  TupleScratch scratch;
  auto cur = gen.begin(0, scratch);
  for (std::uint64_t i = 0; i < gen.count(); ++i) {
    const auto expect = gen.tuple(i);
    const auto got = cur.values();
    ASSERT_EQ(got.size(), expect.size()) << "case " << i;
    for (std::size_t k = 0; k < expect.size(); ++k)
      EXPECT_EQ(got[k], expect[k]) << "case " << i << " slot " << k;
    if (i + 1 < gen.count()) cur.advance();
  }
}

TEST_F(GeneratorTest, CursorMatchesStatelessTupleOnSampledStream) {
  TupleGenerator gen(wide, 5000);
  ASSERT_FALSE(gen.exhaustive());
  TupleScratch scratch;
  auto cur = gen.begin(0, scratch);
  for (std::uint64_t i = 0; i < gen.count(); ++i) {
    const auto expect = gen.tuple(i);
    const auto got = cur.values();
    ASSERT_EQ(got.size(), expect.size()) << "case " << i;
    for (std::size_t k = 0; k < expect.size(); ++k)
      EXPECT_EQ(got[k], expect[k]) << "case " << i << " slot " << k;
    if (i + 1 < gen.count()) cur.advance();
  }
}

TEST_F(GeneratorTest, CursorStartedMidStreamMatchesEveryOffset) {
  // Shards begin cursors at arbitrary range starts; every offset must join
  // the same stream tuple(i) describes, for both generation modes.
  TupleGenerator ex(small);
  TupleGenerator sam(wide, 300);
  for (const TupleGenerator* gen : {&ex, &sam}) {
    for (std::uint64_t first :
         {std::uint64_t{1}, gen->count() / 2, gen->count() - 1}) {
      TupleScratch scratch;
      auto cur = gen->begin(first, scratch);
      for (std::uint64_t i = first; i < gen->count(); ++i) {
        const auto expect = gen->tuple(i);
        const auto got = cur.values();
        ASSERT_EQ(got.size(), expect.size());
        for (std::size_t k = 0; k < expect.size(); ++k)
          EXPECT_EQ(got[k], expect[k]) << "first " << first << " case " << i;
        if (i + 1 < gen->count()) cur.advance();
      }
    }
  }
}

TEST_F(GeneratorTest, CursorReusesOneScratchAcrossGenerators) {
  // A worker reuses a single scratch for every MuT in a shard; switching
  // generators mid-scratch must not leak digits between streams.
  TupleGenerator a(small), b(wide, 100);
  TupleScratch scratch;
  auto ca = a.begin(0, scratch);
  ca.advance();
  auto cb = b.begin(0, scratch);  // clobbers a's scratch, as documented
  const auto expect = b.tuple(0);
  const auto got = cb.values();
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t k = 0; k < expect.size(); ++k) EXPECT_EQ(got[k], expect[k]);
}

TEST_F(GeneratorTest, CursorOnZeroParameterMut) {
  MuT nullary;
  nullary.name = "nullary";
  TupleGenerator gen(nullary);
  TupleScratch scratch;
  auto cur = gen.begin(0, scratch);
  EXPECT_TRUE(cur.values().empty());
}

TEST_F(GeneratorTest, InheritedPoolsAreVisible) {
  // "fmt" inherits "cstr": its pool must be strictly larger.
  MuT m;
  m.name = "fmt_fn";
  m.params = {&lib.get("fmt")};
  TupleGenerator gen(m);
  EXPECT_GT(gen.count(), lib.get("cstr").value_count());
}

}  // namespace
}  // namespace ballista::core
