// The campaign service: a CampaignServer multiplexing several client
// sessions over one machine pool, streaming each session's shard outcomes
// into its own .blog.  The contracts under test:
//
//   * kill matrix — N concurrent sessions on different OS variants, at any
//     --jobs, each produce a merged result bit-identical to a solo
//     in-process run, and (with durability on) a log byte-identical to the
//     log a solo store-backed run writes;
//   * resume — a client that detaches mid-campaign and reattaches (to the
//     same server, or to a freshly constructed one over the same log_dir)
//     receives exactly the missing shards;
//   * lifecycle edges — double attach, bogus versions, unknown sessions,
//     sealed campaigns, a full session table: each a typed kError, and the
//     server keeps serving everyone else;
//   * fairness and backpressure — round-robin keeps same-size sessions
//     within one shard of each other, and a tiny channel capacity slows a
//     campaign down but never wedges it.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "rpc/server.h"
#include "store/format.h"
#include "tests/store_test_util.h"
#include "tests/test_util.h"

namespace ballista::rpc {
namespace {

using core::CampaignOptions;
using core::CampaignResult;
using sim::OsVariant;
using testing::shared_world;
using testing::TinyWorld;
using testing::tiny_options;

std::string temp_dir(const std::string& stem) {
  const std::string dir = ::testing::TempDir() + "ballista_" + stem + "." +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  return {std::istreambuf_iterator<char>(f), {}};
}

void expect_same_result(const CampaignResult& a, const CampaignResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.variant, b.variant) << label;
  EXPECT_EQ(a.reboots, b.reboots) << label;
  EXPECT_EQ(a.total_cases, b.total_cases) << label;
  EXPECT_EQ(a.event_counters, b.event_counters) << label;
  ASSERT_EQ(a.stats.size(), b.stats.size()) << label;
  for (std::size_t i = 0; i < a.stats.size(); ++i) {
    const core::MutStats& x = a.stats[i];
    const core::MutStats& y = b.stats[i];
    const std::string at = label + " / " + std::string(x.mut->name);
    EXPECT_EQ(x.mut->name, y.mut->name) << at;
    EXPECT_EQ(x.executed, y.executed) << at;
    EXPECT_EQ(x.passes, y.passes) << at;
    EXPECT_EQ(x.aborts, y.aborts) << at;
    EXPECT_EQ(x.restarts, y.restarts) << at;
    EXPECT_EQ(x.hindering, y.hindering) << at;
    EXPECT_EQ(x.catastrophic, y.catastrophic) << at;
    EXPECT_EQ(x.crash_case, y.crash_case) << at;
    EXPECT_EQ(x.case_codes, y.case_codes) << at;
    EXPECT_EQ(x.event_counts, y.event_counts) << at;
  }
}

/// Drives server and clients until every client is complete or errored (or
/// the step budget runs out — a wedged server fails the calling test).
void pump(CampaignServer& server, std::vector<CampaignClient*> clients,
          int max_iterations = 20000) {
  for (int i = 0; i < max_iterations; ++i) {
    server.step();
    bool settled = true;
    for (CampaignClient* c : clients) {
      c->poll();
      if (c->attached() && !c->complete() && !c->error()) settled = false;
    }
    if (settled && !server.step()) {
      for (CampaignClient* c : clients) c->poll();
      return;
    }
  }
}

// --- session layer -----------------------------------------------------------

TEST(SessionLayer, SpecRoundTripsThroughOptions) {
  CampaignOptions opt = tiny_options();
  opt.seed = 0xfeed;
  opt.only_api = core::ApiKind::kWin32Sys;
  opt.group_mask = 0x3;
  opt.record_cases = false;
  const CampaignSpec spec = spec_for(OsVariant::kWinNT4, opt);
  const auto back = options_from_spec(spec);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->cap, opt.cap);
  EXPECT_EQ(back->seed, opt.seed);
  EXPECT_EQ(back->record_cases, opt.record_cases);
  EXPECT_EQ(back->repro_pass, opt.repro_pass);
  EXPECT_EQ(back->shard_cases, opt.shard_cases);
  EXPECT_EQ(back->only_api, opt.only_api);
  EXPECT_EQ(back->group_mask, opt.group_mask);
  // Canonical: converting back yields the identical spec.
  const CampaignSpec again = spec_for(OsVariant::kWinNT4, *back);
  EXPECT_EQ(encode(Message{Hello{kProtocolVersion, again}}),
            encode(Message{Hello{kProtocolVersion, spec}}));
}

TEST(SessionLayer, RejectsNonCanonicalSpecs) {
  const CampaignSpec good = spec_for(OsVariant::kWinNT4, tiny_options());
  ASSERT_TRUE(options_from_spec(good).has_value());

  CampaignSpec s = good;
  s.variant = 99;
  EXPECT_FALSE(options_from_spec(s).has_value());
  s = good;
  s.record_cases = 2;
  EXPECT_FALSE(options_from_spec(s).has_value());
  s = good;
  s.only_api = 1;  // value without has_only_api: two encodings, one meaning
  EXPECT_FALSE(options_from_spec(s).has_value());
  s = good;
  s.has_only_api = 1;
  s.only_api = 99;
  EXPECT_FALSE(options_from_spec(s).has_value());
  s = good;
  s.has_group_filter = 1;
  s.group_mask = 0;
  EXPECT_FALSE(options_from_spec(s).has_value());
  s = good;
  s.group_mask = 7;
  EXPECT_FALSE(options_from_spec(s).has_value());
  s = good;
  s.shard_cases = 0;
  EXPECT_FALSE(options_from_spec(s).has_value());
}

// --- kill matrix -------------------------------------------------------------

TEST(CampaignService, ConcurrentSessionsMatchSoloRunsAtAnyJobs) {
  const TinyWorld world;
  const CampaignOptions opt = tiny_options();
  const OsVariant variants[] = {OsVariant::kWin95, OsVariant::kWinNT4,
                                OsVariant::kLinux};

  std::vector<CampaignResult> solo;
  for (const OsVariant v : variants)
    solo.push_back(core::Campaign::run(v, world.registry, opt));

  for (const unsigned jobs : {1u, 4u}) {
    ServerConfig cfg;
    cfg.jobs = jobs;
    CampaignServer server(world.registry, cfg);
    std::vector<std::unique_ptr<Channel>> channels;
    std::vector<std::unique_ptr<CampaignClient>> clients;
    for (const OsVariant v : variants) {
      channels.push_back(std::make_unique<Channel>());
      server.bind(channels.back()->a());
      clients.push_back(std::make_unique<CampaignClient>(
          channels.back()->b(), world.registry, v, opt));
      ASSERT_TRUE(clients.back()->hello());
    }
    std::vector<CampaignClient*> raw;
    for (auto& c : clients) raw.push_back(c.get());
    pump(server, raw);

    for (std::size_t i = 0; i < clients.size(); ++i) {
      ASSERT_TRUE(clients[i]->complete())
          << "jobs=" << jobs << " client " << i;
      const auto result = clients[i]->result();
      ASSERT_TRUE(result.has_value()) << "jobs=" << jobs << " client " << i;
      expect_same_result(solo[i], *result,
                         "jobs=" + std::to_string(jobs) + " client " +
                             std::to_string(i));
    }
  }
}

TEST(CampaignService, SessionLogsAreByteIdenticalToSoloStoreRuns) {
  const TinyWorld world;
  const CampaignOptions opt = tiny_options();
  const OsVariant v = OsVariant::kWinNT4;

  const std::string ref_dir = temp_dir("rpc_ref");
  const std::string ref_path = ref_dir + "/ref.blog";
  const auto ref = store::run_with_store(v, world.registry, opt, ref_path,
                                         /*resume=*/false);
  ASSERT_TRUE(ref.ok) << ref.error;

  for (const unsigned jobs : {1u, 4u}) {
    ServerConfig cfg;
    cfg.jobs = jobs;
    cfg.log_dir = temp_dir("rpc_logs_j" + std::to_string(jobs));
    CampaignServer server(world.registry, cfg);
    Channel ch;
    server.bind(ch.a());
    CampaignClient client(ch.b(), world.registry, v, opt);
    ASSERT_TRUE(client.hello());
    pump(server, {&client});
    ASSERT_TRUE(client.complete()) << "jobs=" << jobs;

    const core::Plan plan = core::plan_for(v, world.registry, opt);
    const store::RunHeader header = store::make_run_header(plan, opt);
    const std::string path = server.log_path(header);
    EXPECT_EQ(slurp(path), slurp(ref_path)) << "jobs=" << jobs;
  }
}

// --- detach / reattach -------------------------------------------------------

TEST(CampaignService, ReattachStreamsOnlyTheMissingShards) {
  const TinyWorld world;
  const CampaignOptions opt = tiny_options();
  const OsVariant v = OsVariant::kLinux;

  ServerConfig cfg;
  cfg.log_dir = temp_dir("rpc_reattach");
  CampaignServer server(world.registry, cfg);
  Channel ch;
  server.bind(ch.a());

  CampaignClient first(ch.b(), world.registry, v, opt);
  ASSERT_TRUE(first.hello());
  server.step();
  ASSERT_TRUE(first.poll());
  ASSERT_TRUE(first.attached());
  const std::size_t total = first.plan().shards.size();
  ASSERT_GE(total, 4u) << "the fixture must produce a multi-shard plan";

  // Let a couple of shards complete, then walk away mid-campaign.
  server.step();
  server.step();
  ASSERT_TRUE(first.poll());
  first.detach();
  server.step();  // server processes the kDetach
  const Session* s = server.session(1);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->state(), SessionState::kDetached);
  const std::size_t done_at_detach = s->done_count();
  EXPECT_GT(done_at_detach, 0u);
  EXPECT_LT(done_at_detach, total);

  // A detached session is parked, not scheduled.
  const std::size_t executed = server.shards_executed();
  server.step();
  EXPECT_EQ(server.shards_executed(), executed);

  CampaignClient second(ch.b(), world.registry, v, opt);
  ASSERT_TRUE(second.hello());
  pump(server, {&second});
  ASSERT_TRUE(second.complete());
  EXPECT_EQ(second.session_id(), 1u);  // the same session, not a new one
  EXPECT_EQ(second.outcomes_received(), total - done_at_detach);

  // The reattached client did not see every shard itself; the log is the
  // source of truth and must match an uninterrupted solo store run.
  EXPECT_FALSE(second.result().has_value());
  const std::string ref_dir = temp_dir("rpc_reattach_ref");
  const auto ref = store::run_with_store(v, world.registry, opt,
                                         ref_dir + "/ref.blog", false);
  ASSERT_TRUE(ref.ok) << ref.error;
  const core::Plan plan = core::plan_for(v, world.registry, opt);
  const store::RunHeader header = store::make_run_header(plan, opt);
  EXPECT_EQ(slurp(server.log_path(header)), slurp(ref_dir + "/ref.blog"));
  const auto loaded =
      store::load_result(world.registry, server.log_path(header));
  ASSERT_TRUE(loaded.ok) << loaded.error;
  expect_same_result(ref.result, loaded.result, "loaded session log");
}

TEST(CampaignService, AFreshServerResumesAPartialSessionLog) {
  const TinyWorld world;
  const CampaignOptions opt = tiny_options();
  const OsVariant v = OsVariant::kWinNT4;
  const std::string log_dir = temp_dir("rpc_cold_resume");

  std::size_t done_first = 0;
  {
    ServerConfig cfg;
    cfg.log_dir = log_dir;
    CampaignServer server(world.registry, cfg);
    Channel ch;
    server.bind(ch.a());
    CampaignClient client(ch.b(), world.registry, v, opt);
    ASSERT_TRUE(client.hello());
    server.step();  // handshake
    server.step();  // one shard
    server.step();  // another
    ASSERT_TRUE(client.poll());
    done_first = server.session(1)->done_count();
    ASSERT_GT(done_first, 0u);
    ASSERT_LT(done_first, client.plan().shards.size());
    // Server dies here; the flushed .blog prefix is all that survives.
  }

  ServerConfig cfg;
  cfg.log_dir = log_dir;
  CampaignServer server(world.registry, cfg);
  Channel ch;
  server.bind(ch.a());
  CampaignClient client(ch.b(), world.registry, v, opt);
  ASSERT_TRUE(client.hello());
  server.step();
  ASSERT_TRUE(client.poll());
  ASSERT_TRUE(client.attached());
  EXPECT_EQ(client.reused(), done_first);
  pump(server, {&client});
  ASSERT_TRUE(client.complete());

  const core::Plan plan = core::plan_for(v, world.registry, opt);
  const store::RunHeader header = store::make_run_header(plan, opt);
  const std::string ref_dir = temp_dir("rpc_cold_resume_ref");
  const auto ref = store::run_with_store(v, world.registry, opt,
                                         ref_dir + "/ref.blog", false);
  ASSERT_TRUE(ref.ok) << ref.error;
  EXPECT_EQ(slurp(server.log_path(header)), slurp(ref_dir + "/ref.blog"));
}

// --- lifecycle edges ---------------------------------------------------------

/// Sends one raw frame and returns the server's (decoded) reply, if any.
std::optional<Message> ask(CampaignServer& server, Channel& ch, Frame frame) {
  ch.b().send(std::move(frame));
  server.step();
  const auto reply = ch.b().try_recv();
  if (!reply) return std::nullopt;
  return decode(*reply);
}

TEST(CampaignService, HelloWithWrongVersionGetsBadVersion) {
  const TinyWorld world;
  CampaignServer server(world.registry);
  Channel ch;
  server.bind(ch.a());
  Hello h;
  h.protocol_version = 999;
  h.spec = spec_for(OsVariant::kWinNT4, tiny_options());
  const auto reply = ask(server, ch, encode(Message{h}));
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(message_type(*reply), MessageType::kError);
  EXPECT_EQ(std::get<Error>(*reply).code, ErrorCode::kBadVersion);
  EXPECT_EQ(server.session_count(), 0u);
}

TEST(CampaignService, HelloWithBogusSpecGetsMalformed) {
  const TinyWorld world;
  CampaignServer server(world.registry);
  Channel ch;
  server.bind(ch.a());
  Hello h;
  h.spec = spec_for(OsVariant::kWinNT4, tiny_options());
  h.spec.variant = 77;
  const auto reply = ask(server, ch, encode(Message{h}));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::get<Error>(*reply).code, ErrorCode::kMalformed);
}

TEST(CampaignService, UndecodableFrameGetsMalformed) {
  const TinyWorld world;
  CampaignServer server(world.registry);
  Channel ch;
  server.bind(ch.a());
  const auto reply = ask(server, ch, Frame{0xff, 0x00, 0x42});
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::get<Error>(*reply).code, ErrorCode::kMalformed);
}

TEST(CampaignService, UnexpectedV1FrameGetsMalformed) {
  const TinyWorld world;
  CampaignServer server(world.registry);
  Channel ch;
  server.bind(ch.a());
  const auto reply =
      ask(server, ch, encode(Message{TestRequest{"tiny_probe", 0}}));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::get<Error>(*reply).code, ErrorCode::kMalformed);
}

TEST(CampaignService, DoubleAttachOfTheSameCampaignIsRefused) {
  const TinyWorld world;
  CampaignServer server(world.registry);
  Channel one;
  Channel two;
  server.bind(one.a());
  server.bind(two.a());
  CampaignClient a(one.b(), world.registry, OsVariant::kWinNT4, tiny_options());
  CampaignClient b(two.b(), world.registry, OsVariant::kWinNT4, tiny_options());
  ASSERT_TRUE(a.hello());
  server.step();
  ASSERT_TRUE(a.poll());
  ASSERT_TRUE(a.attached());
  ASSERT_TRUE(b.hello());
  server.step();
  EXPECT_FALSE(b.poll());  // poll() latches the error
  ASSERT_TRUE(b.error().has_value());
  EXPECT_EQ(b.error()->code, ErrorCode::kAlreadyAttached);
  // The refusal did not disturb the attached client.
  pump(server, {&a});
  EXPECT_TRUE(a.complete());
}

TEST(CampaignService, DetachEdgesAreTypedErrors) {
  const TinyWorld world;
  CampaignServer server(world.registry);
  Channel ch;
  server.bind(ch.a());

  // Unknown session id.
  auto reply = ask(server, ch, encode(Message{Detach{42}}));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::get<Error>(*reply).code, ErrorCode::kUnknownSession);

  // Detach twice: the second one finds no attached client.
  CampaignClient client(ch.b(), world.registry, OsVariant::kWinNT4,
                        tiny_options());
  ASSERT_TRUE(client.hello());
  server.step();
  ASSERT_TRUE(client.poll());
  const std::uint64_t id = client.session_id();
  client.detach();
  server.step();
  reply = ask(server, ch, encode(Message{Detach{id}}));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::get<Error>(*reply).code, ErrorCode::kNotAttached);
}

TEST(CampaignService, HelloToASealedCampaignReportsTheLog) {
  const TinyWorld world;
  ServerConfig cfg;
  cfg.log_dir = temp_dir("rpc_sealed");
  CampaignServer server(world.registry, cfg);
  Channel ch;
  server.bind(ch.a());
  CampaignClient first(ch.b(), world.registry, OsVariant::kWinNT4,
                       tiny_options());
  ASSERT_TRUE(first.hello());
  pump(server, {&first});
  ASSERT_TRUE(first.complete());

  // Same server: the sealed session answers.
  CampaignClient again(ch.b(), world.registry, OsVariant::kWinNT4,
                       tiny_options());
  ASSERT_TRUE(again.hello());
  server.step();
  EXPECT_FALSE(again.poll());
  ASSERT_TRUE(again.error().has_value());
  EXPECT_EQ(again.error()->code, ErrorCode::kSessionSealed);
  EXPECT_NE(again.error()->message.find(".blog"), std::string::npos);

  // Fresh server over the same log_dir: the sealed log is recognized
  // without re-running anything.
  CampaignServer reborn(world.registry, cfg);
  Channel ch2;
  reborn.bind(ch2.a());
  CampaignClient cold(ch2.b(), world.registry, OsVariant::kWinNT4,
                      tiny_options());
  ASSERT_TRUE(cold.hello());
  reborn.step();
  EXPECT_FALSE(cold.poll());
  ASSERT_TRUE(cold.error().has_value());
  EXPECT_EQ(cold.error()->code, ErrorCode::kSessionSealed);
  EXPECT_EQ(reborn.shards_executed(), 0u);
}

TEST(CampaignService, SessionTableQuotaIsEnforced) {
  const TinyWorld world;
  ServerConfig cfg;
  cfg.max_sessions = 1;
  CampaignServer server(world.registry, cfg);
  Channel one;
  Channel two;
  server.bind(one.a());
  server.bind(two.a());
  CampaignClient a(one.b(), world.registry, OsVariant::kWinNT4, tiny_options());
  CampaignOptions other = tiny_options();
  other.seed = 99;  // a different campaign, not a reattach
  CampaignClient b(two.b(), world.registry, OsVariant::kWinNT4, other);
  ASSERT_TRUE(a.hello());
  server.step();
  ASSERT_TRUE(b.hello());
  server.step();
  EXPECT_FALSE(b.poll());
  ASSERT_TRUE(b.error().has_value());
  EXPECT_EQ(b.error()->code, ErrorCode::kQuotaExceeded);
  pump(server, {&a});
  EXPECT_TRUE(a.complete());  // the admitted session is unharmed
}

TEST(CampaignService, UnwritableLogDirIsAStoreFailureNotAWedge) {
  const TinyWorld world;
  ServerConfig cfg;
  cfg.log_dir = "/nonexistent_ballista_dir/nested";
  CampaignServer server(world.registry, cfg);
  Channel ch;
  server.bind(ch.a());
  CampaignClient client(ch.b(), world.registry, OsVariant::kWinNT4,
                        tiny_options());
  ASSERT_TRUE(client.hello());
  server.step();
  EXPECT_FALSE(client.poll());
  ASSERT_TRUE(client.error().has_value());
  EXPECT_EQ(client.error()->code, ErrorCode::kStoreFailure);
  EXPECT_EQ(server.session_count(), 0u);
  EXPECT_FALSE(server.step());  // quiescent, not spinning
}

// --- fairness and backpressure -----------------------------------------------

TEST(CampaignService, RoundRobinKeepsEqualSessionsWithinOneShard) {
  const TinyWorld world;
  ServerConfig cfg;
  cfg.jobs = 1;  // one shard per step: the strictest interleaving view
  cfg.quota = 1;
  CampaignServer server(world.registry, cfg);
  Channel one;
  Channel two;
  server.bind(one.a());
  server.bind(two.a());
  CampaignOptions opt_b = tiny_options();
  opt_b.seed = 7;  // distinct campaign, identical shape
  CampaignClient a(one.b(), world.registry, OsVariant::kWinNT4, tiny_options());
  CampaignClient b(two.b(), world.registry, OsVariant::kWinNT4, opt_b);
  ASSERT_TRUE(a.hello());
  ASSERT_TRUE(b.hello());
  server.step();  // both handshakes
  ASSERT_TRUE(a.poll());
  ASSERT_TRUE(b.poll());

  const Session* sa = server.session_by_fingerprint(
      store::run_fingerprint(store::make_run_header(
          core::plan_for(OsVariant::kWinNT4, world.registry, tiny_options()),
          tiny_options())));
  const Session* sb = server.session_by_fingerprint(store::run_fingerprint(
      store::make_run_header(
          core::plan_for(OsVariant::kWinNT4, world.registry, opt_b), opt_b)));
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);
  while (!(sa->all_done() && sb->all_done())) {
    server.step();
    a.poll();
    b.poll();
    const auto gap = static_cast<std::int64_t>(sa->done_count()) -
                     static_cast<std::int64_t>(sb->done_count());
    EXPECT_LE(gap < 0 ? -gap : gap, 1)
        << sa->done_count() << " vs " << sb->done_count();
  }
  a.poll();
  b.poll();
  EXPECT_TRUE(a.complete());
  EXPECT_TRUE(b.complete());
}

TEST(CampaignService, TinyChannelCapacityThrottlesButCompletes) {
  const TinyWorld world;
  ServerConfig cfg;
  cfg.jobs = 4;  // four shards finish per step...
  cfg.quota = 4;
  CampaignServer server(world.registry, cfg);
  Channel ch(2);  // ...into a two-frame inbox: the stream must hit refusal
  server.bind(ch.a());
  CampaignClient client(ch.b(), world.registry, OsVariant::kLinux,
                        tiny_options());
  ASSERT_TRUE(client.hello());
  pump(server, {&client});
  ASSERT_TRUE(client.complete());
  EXPECT_GT(ch.a().refused(), 0u)
      << "capacity 2 must actually exercise the refusal path";
  const auto result = client.result();
  ASSERT_TRUE(result.has_value());
  expect_same_result(
      core::Campaign::run(OsVariant::kLinux, world.registry, tiny_options()),
      *result, "tiny channel");
}

TEST(CampaignService, WireTraceSeesBothDirections) {
  const TinyWorld world;
  CampaignServer server(world.registry);
  Channel ch;
  server.bind(ch.a());
  std::size_t inbound = 0;
  std::size_t outbound = 0;
  server.wire_trace = [&](char dir, const Message& m) {
    (dir == '<' ? inbound : outbound) += 1;
    EXPECT_FALSE(describe(m).empty());
  };
  CampaignClient client(ch.b(), world.registry, OsVariant::kWinNT4,
                        tiny_options());
  ASSERT_TRUE(client.hello());
  pump(server, {&client});
  ASSERT_TRUE(client.complete());
  EXPECT_EQ(inbound, 1u);  // the hello
  // attach + one streamed frame per shard + complete
  EXPECT_EQ(outbound, 2u + client.plan().shards.size());
}

}  // namespace
}  // namespace ballista::rpc
