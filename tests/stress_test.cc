// Tests for the load/state-dependence harness (paper §5 future work).
#include <gtest/gtest.h>

#include "harness/stress.h"
#include "tests/test_util.h"

namespace ballista::harness {
namespace {

using sim::OsVariant;
using testing::shared_world;

core::CampaignOptions fast() {
  core::CampaignOptions opt;
  opt.cap = 60;
  opt.only_api = core::ApiKind::kCLib;
  return opt;
}

TEST(Stress, ProfilesHaveTheAdvertisedShape) {
  EXPECT_TRUE(baseline_profile().is_baseline());
  EXPECT_FALSE(handle_pressure_profile().is_baseline());
  EXPECT_GT(handle_pressure_profile().extra_handles, 0);
  EXPECT_GT(memory_pressure_profile().heap_chunks, 0);
  EXPECT_GT(fs_clutter_profile().fs_clutter_files, 0);
  EXPECT_GT(aged_machine_profile().wear_fuse_entries, 0);
}

TEST(Stress, TaskSetupHookRunsInEveryCase) {
  int calls = 0;
  core::CampaignOptions opt = fast();
  opt.cap = 10;
  opt.task_setup = [&](sim::SimProcess& proc) {
    ++calls;
    EXPECT_NE(proc.default_heap(), nullptr);
  };
  const auto r = core::Campaign::run(OsVariant::kLinux,
                                     shared_world().registry, opt);
  EXPECT_EQ(static_cast<std::uint64_t>(calls), r.total_cases);
}

TEST(Stress, PerTaskPressureLeavesRatesUnchanged) {
  // Exception handling is argument-driven; ambient pressure must not change
  // classification (a strong isolation property of the harness).
  const auto base = core::Campaign::run(OsVariant::kLinux,
                                        shared_world().registry, fast());
  for (const StressProfile& p :
       {handle_pressure_profile(), memory_pressure_profile(),
        fs_clutter_profile()}) {
    const auto loaded = run_stressed_campaign(
        OsVariant::kLinux, shared_world().registry, p, fast());
    ASSERT_EQ(base.stats.size(), loaded.stats.size());
    for (std::size_t i = 0; i < base.stats.size(); ++i) {
      EXPECT_EQ(base.stats[i].aborts, loaded.stats[i].aborts)
          << base.stats[i].mut->name;
      EXPECT_EQ(base.stats[i].passes, loaded.stats[i].passes)
          << base.stats[i].mut->name;
    }
  }
}

TEST(Stress, AgedMachineDiesOnAnInnocentCall) {
  core::CampaignOptions opt = fast();
  const auto aged = run_stressed_campaign(
      OsVariant::kWin98, shared_world().registry, aged_machine_profile(),
      opt);
  const auto base = core::Campaign::run(OsVariant::kWin98,
                                        shared_world().registry, opt);
  const auto aged_list = core::catastrophic_list(aged);
  const auto base_list = core::catastrophic_list(base);
  EXPECT_EQ(aged_list.size(), base_list.size() + 1);
  // The extra crash is starred: it does not reproduce as a single test.
  std::set<std::string> base_names;
  for (const auto& e : base_list) base_names.insert(e.name);
  int extra = 0;
  for (const auto& e : aged_list) {
    if (base_names.count(e.name)) continue;
    ++extra;
    EXPECT_TRUE(e.starred) << e.name;
  }
  EXPECT_EQ(extra, 1);
}

TEST(Stress, AgingIsANoOpWithoutASharedArena) {
  const auto aged = run_stressed_campaign(
      OsVariant::kWinNT4, shared_world().registry, aged_machine_profile(),
      fast());
  EXPECT_TRUE(core::catastrophic_list(aged).empty());
  EXPECT_EQ(aged.reboots, 0);
}

TEST(Stress, RebootCuresTheAgedMachine) {
  sim::Machine m(OsVariant::kWin98);
  m.age_arena(3);
  m.kernel_enter();
  m.reboot();
  for (int i = 0; i < 50; ++i) EXPECT_NO_THROW(m.kernel_enter());
}

TEST(Stress, MachineSetupRunsOncePerCampaign) {
  int calls = 0;
  core::CampaignOptions opt = fast();
  opt.cap = 5;
  opt.machine_setup = [&](sim::Machine&) { ++calls; };
  (void)core::Campaign::run(OsVariant::kLinux, shared_world().registry, opt);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace ballista::harness
