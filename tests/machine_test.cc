// Unit tests for the Machine: personalities, panic/reboot protocol and the
// deferred corruption fuse (the paper's inter-test interference model).
#include <gtest/gtest.h>

#include "sim/machine.h"

namespace ballista::sim {
namespace {

TEST(Personality, TableMatchesPaperArchitecture) {
  EXPECT_TRUE(personality_for(OsVariant::kWin95).has_shared_arena);
  EXPECT_TRUE(personality_for(OsVariant::kWin98).has_shared_arena);
  EXPECT_FALSE(personality_for(OsVariant::kWinNT4).has_shared_arena);
  EXPECT_FALSE(personality_for(OsVariant::kWin2000).has_shared_arena);
  EXPECT_FALSE(personality_for(OsVariant::kLinux).has_shared_arena);

  EXPECT_EQ(personality_for(OsVariant::kLinux).pointer_policy,
            PointerPolicy::kProbeReturnError);
  EXPECT_EQ(personality_for(OsVariant::kWinNT4).pointer_policy,
            PointerPolicy::kProbeRaiseException);
  EXPECT_EQ(personality_for(OsVariant::kWin95).pointer_policy,
            PointerPolicy::kStubCheckLoose);

  EXPECT_TRUE(personality_for(OsVariant::kWinCE).crt_in_kernel);
  EXPECT_TRUE(personality_for(OsVariant::kWinCE).strict_alignment);
  EXPECT_TRUE(personality_for(OsVariant::kWinCE).prefers_unicode);
  EXPECT_TRUE(personality_for(OsVariant::kWinCE).slot_addressing);
  EXPECT_FALSE(personality_for(OsVariant::kWin98).slot_addressing);

  EXPECT_EQ(personality_for(OsVariant::kLinux).api, ApiFlavor::kPosix);
  EXPECT_EQ(personality_for(OsVariant::kWin95).api, ApiFlavor::kWin32);
}

TEST(Personality, FamilyPredicates) {
  EXPECT_TRUE(is_win9x(OsVariant::kWin95));
  EXPECT_TRUE(is_win9x(OsVariant::kWin98SE));
  EXPECT_FALSE(is_win9x(OsVariant::kWinNT4));
  EXPECT_TRUE(is_nt_family(OsVariant::kWin2000));
  EXPECT_FALSE(is_nt_family(OsVariant::kWinCE));
  EXPECT_TRUE(is_windows(OsVariant::kWinCE));
  EXPECT_FALSE(is_windows(OsVariant::kLinux));
}

TEST(Machine, PanicSetsCrashStateAndThrows) {
  Machine m(OsVariant::kWin98);
  EXPECT_FALSE(m.crashed());
  EXPECT_THROW(m.panic(PanicKind::kInduced), KernelPanic);
  EXPECT_TRUE(m.crashed());
  EXPECT_EQ(m.panic_kind(), PanicKind::kInduced);
  EXPECT_EQ(m.crash_reason(), "induced panic (test hook)");
  EXPECT_EQ(m.panic_count(), 1);
}

TEST(Machine, KernelEnterOnCrashedMachineRethrows) {
  Machine m(OsVariant::kWin98);
  try {
    m.panic(PanicKind::kInduced);
  } catch (const KernelPanic&) {
  }
  EXPECT_THROW(m.kernel_enter(), KernelPanic);
}

TEST(Machine, RebootClearsEverything) {
  Machine m(OsVariant::kWin98);
  m.arena().page(0x100)->data[0] = 0xFF;
  try {
    m.panic(PanicKind::kInduced);
  } catch (const KernelPanic&) {
  }
  m.reboot();
  EXPECT_FALSE(m.crashed());
  EXPECT_NO_THROW(m.kernel_enter());
  EXPECT_EQ(m.arena().corruption(), 0);
  EXPECT_EQ(m.arena().page(0x100)->data[0], 0);  // arena wiped
}

TEST(Machine, CriticalCorruptionPanicsImmediately) {
  Machine m(OsVariant::kWin98);
  EXPECT_THROW(m.note_arena_corruption(0x10, /*critical=*/true), KernelPanic);
  EXPECT_TRUE(m.crashed());
}

TEST(Machine, DeferredCorruptionBurnsTheFuse) {
  Machine m(OsVariant::kWin98);
  const int fuse = personality_for(OsVariant::kWin98).corruption_fuse;
  m.note_arena_corruption(0x80005000, /*critical=*/false);
  EXPECT_FALSE(m.crashed());
  for (int i = 0; i < fuse - 1; ++i) EXPECT_NO_THROW(m.kernel_enter());
  EXPECT_THROW(m.kernel_enter(), KernelPanic);
  EXPECT_TRUE(m.crashed());
}

TEST(Machine, FuseDoesNotRearmOnRepeatCorruption) {
  Machine m(OsVariant::kWin98);
  m.note_arena_corruption(0x80005000, false);
  m.kernel_enter();
  // Additional corruption must not push the deadline out.
  m.note_arena_corruption(0x80005000, false);
  const int fuse = personality_for(OsVariant::kWin98).corruption_fuse;
  for (int i = 0; i < fuse - 2; ++i) EXPECT_NO_THROW(m.kernel_enter());
  EXPECT_THROW(m.kernel_enter(), KernelPanic);
}

TEST(Machine, RebootDisarmsTheFuse) {
  Machine m(OsVariant::kWin98);
  m.note_arena_corruption(0x80005000, false);
  m.reboot();
  for (int i = 0; i < 100; ++i) EXPECT_NO_THROW(m.kernel_enter());
}

TEST(Machine, ProcessesGetPosixFdNumberingOnLinuxOnly) {
  Machine linux_box(OsVariant::kLinux);
  auto p = linux_box.create_process();
  EXPECT_EQ(p->std_in, 0u);
  EXPECT_EQ(p->std_err, 2u);

  Machine nt(OsVariant::kWinNT4);
  auto q = nt.create_process();
  EXPECT_EQ(q->std_in, 4u);  // NT-style handle values
}

TEST(Machine, ProcessesShareArenaOn9xOnly) {
  Machine w98(OsVariant::kWin98);
  auto p = w98.create_process();
  EXPECT_EQ(p->mem().arena(), &w98.arena());

  Machine nt(OsVariant::kWinNT4);
  auto q = nt.create_process();
  EXPECT_EQ(q->mem().arena(), nullptr);
}

TEST(Machine, TicksAdvanceOnKernelEntry) {
  Machine m(OsVariant::kLinux);
  const auto t0 = m.ticks();
  m.kernel_enter();
  EXPECT_GT(m.ticks(), t0);
}

TEST(SimProcess, FreshTaskHasExpectedResources) {
  Machine m(OsVariant::kWinNT4);
  auto p = m.create_process();
  EXPECT_NE(p->main_thread(), nullptr);
  EXPECT_NE(p->self_object(), nullptr);
  EXPECT_NE(p->default_heap(), nullptr);
  EXPECT_FALSE(p->env().empty());
  // The stack region is mapped.
  EXPECT_TRUE(p->mem().is_mapped(0x7ff0'0000 - 1));
  EXPECT_THROW(p->hang("test"), TaskHang);
}

}  // namespace
}  // namespace ballista::sim
