// The fault-point interposition layer (sim::MutationHub): window gating,
// counting, page-write coalescing, announce-before-apply cut semantics, the
// new trace events, and the kobject edge cases under mid-operation cuts.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/ballista.h"
#include "sim/kobject.h"
#include "sim/mutation.h"
#include "tests/test_util.h"

namespace ballista {
namespace {

using sim::FaultPlan;
using sim::Machine;
using sim::MutationKind;
using sim::OsVariant;

TEST(MutationHub, WindowGatesEveryAnnouncement) {
  Machine m(OsVariant::kWinNT4);
  auto& hub = m.mutations();
  hub.set_counting(true);

  // Window closed: harness work never counts as a persistence point.
  auto p = m.fs().parse("tmp/gated.txt", sim::FileSystem::root_path());
  ASSERT_NE(m.fs().create_file(p, false, false), nullptr);
  EXPECT_EQ(hub.seq(), 0u);

  hub.open_window();
  auto p2 = m.fs().parse("tmp/counted.txt", sim::FileSystem::root_path());
  ASSERT_NE(m.fs().create_file(p2, false, false), nullptr);
  EXPECT_EQ(hub.seq(), 1u);
  EXPECT_EQ(hub.count(MutationKind::kFsCreate), 1u);
  hub.close_window();

  // Idle hub (window open, neither counting nor armed) also stays silent.
  hub.set_counting(false);
  hub.open_window();
  auto p3 = m.fs().parse("tmp/idle.txt", sim::FileSystem::root_path());
  ASSERT_NE(m.fs().create_file(p3, false, false), nullptr);
  EXPECT_EQ(hub.seq(), 1u);
}

TEST(MutationHub, ConsecutiveSamePageWritesCoalesce) {
  Machine m(OsVariant::kWinNT4);
  auto proc = m.acquire_process();
  auto& hub = m.mutations();
  const sim::Addr a = proc->mem().alloc(3 * sim::kPageSize);
  hub.set_counting(true);
  hub.open_window();

  // A memcpy is one torn write, not kPageSize of them.
  for (int i = 0; i < 64; ++i)
    proc->mem().write_u8(a + static_cast<sim::Addr>(i), 0xAA);
  EXPECT_EQ(hub.count(MutationKind::kPageWrite), 1u);

  // Crossing into another page is a second point; coming back is a third
  // (only *consecutive* same-page stores coalesce).
  proc->mem().write_u8(a + sim::kPageSize, 0xBB);
  proc->mem().write_u8(a, 0xCC);
  EXPECT_EQ(hub.count(MutationKind::kPageWrite), 3u);

  // An interleaved point of another kind breaks the run too.
  auto p = m.fs().parse("tmp/interleave.txt", sim::FileSystem::root_path());
  ASSERT_NE(m.fs().create_file(p, false, false), nullptr);
  proc->mem().write_u8(a, 0xDD);
  EXPECT_EQ(hub.count(MutationKind::kPageWrite), 4u);

  hub.close_window();
  hub.set_counting(false);
  m.release_process(std::move(proc));
}

TEST(MutationHub, CutFiresBeforeTheMutationApplies) {
  Machine m(OsVariant::kWinNT4);
  auto& hub = m.mutations();
  hub.arm(FaultPlan{1});
  hub.open_window();

  auto p = m.fs().parse("tmp/torn.txt", sim::FileSystem::root_path());
  EXPECT_THROW(m.fs().create_file(p, false, false), sim::KernelPanic);
  EXPECT_TRUE(m.crashed());
  EXPECT_EQ(m.panic_kind(), sim::PanicKind::kFaultInjection);
  EXPECT_EQ(hub.cut_fired_at(), 1u);
  // Announce-before-apply: the world died with the node un-created.
  EXPECT_EQ(m.fs().resolve(p), nullptr);

  // A fired cut disarms itself: after reboot the same mutation goes through.
  hub.close_window();
  m.restore(sim::RestoreLevel::kReboot);
  EXPECT_FALSE(hub.armed());
  ASSERT_NE(m.fs().create_file(p, false, false), nullptr);
}

TEST(MutationHub, ResetCountsKeepsModesFullResetClearsThem) {
  Machine m(OsVariant::kWinNT4);
  auto& hub = m.mutations();
  hub.set_counting(true);
  hub.open_window();
  auto p = m.fs().parse("tmp/n.txt", sim::FileSystem::root_path());
  ASSERT_NE(m.fs().create_file(p, false, false), nullptr);
  EXPECT_EQ(hub.seq(), 1u);

  hub.reset_counts();
  EXPECT_EQ(hub.seq(), 0u);
  EXPECT_TRUE(hub.counting());
  EXPECT_TRUE(hub.window_open());

  hub.full_reset();
  EXPECT_FALSE(hub.counting());
  EXPECT_FALSE(hub.window_open());
  EXPECT_FALSE(hub.armed());
}

TEST(MutationTrace, RendersTheNewEventKinds) {
  EXPECT_EQ(trace::render(trace::mutation_point_event(MutationKind::kFsCreate,
                                                      3, 0x2a)),
            "mutation point #3 fs_create detail=0x2a");
  EXPECT_EQ(
      trace::render(trace::fault_cut_event(MutationKind::kHandleClose, 7)),
      "fault injection: cut at mutation point #7 (handle_close)");
  EXPECT_EQ(trace::event_kind_name(trace::EventKind::kMutationPoint),
            "mutation_point");
  EXPECT_EQ(trace::event_kind_name(trace::EventKind::kFaultCut), "fault_cut");
  EXPECT_EQ(sim::panic_reason(sim::PanicKind::kFaultInjection),
            "fault injection cut at an armed mutation point");
}

// Satellite: catastrophic crash_trace windows of a *non-crash* campaign must
// render exactly as they did before the interposition layer existed — the
// dormant hub contributes no events and no text.
TEST(MutationTrace, BaseCampaignCrashChainsRenderUnchanged) {
  core::TypeLibrary lib;
  auto& t = lib.make("tiny");
  for (int i = 0; i < 4; ++i)
    t.add("v" + std::to_string(i), i >= 2,
          [i](core::ValueCtx&) { return static_cast<core::RawArg>(i); });

  core::Registry reg;
  core::MuT imm;
  imm.name = "imm";
  imm.api = core::ApiKind::kWin32Sys;
  imm.group = core::FuncGroup::kProcessPrimitives;
  imm.params = {&lib.get("tiny")};
  imm.variant_mask = core::kMaskEverything;
  imm.hazards = {{OsVariant::kWin95, core::CrashStyle::kImmediate}};
  imm.impl = [](core::CallContext& c) -> core::CallOutcome {
    std::uint8_t junk[4] = {};
    if (c.arg32(0) >= 2) (void)c.k_write(0xDEAD0000, junk);
    return core::ok(0);
  };
  reg.add(std::move(imm));

  const auto r = core::Campaign::run_sequential(OsVariant::kWin95, reg);
  const core::MutStats* s = r.find("imm");
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->catastrophic);
  const std::vector<trace::EventKind> want{
      trace::EventKind::kSyscallEnter, trace::EventKind::kProbeDecision,
      trace::EventKind::kFault, trace::EventKind::kPanic};
  std::vector<trace::EventKind> got;
  for (const trace::TraceEvent& e : s->crash_trace) got.push_back(e.kind);
  EXPECT_EQ(got, want);

  const std::string text = trace::render_tail(s->crash_trace);
  EXPECT_EQ(text.find("mutation point"), std::string::npos);
  EXPECT_EQ(text.find("fault injection"), std::string::npos);
  EXPECT_NE(text.find("probe write 0xdead0000 size=4 -> unprobed"),
            std::string::npos);
  EXPECT_NE(
      text.find(sim::describe_panic(sim::PanicKind::kKernelPageFault)),
      std::string::npos);
}

// --- kobject edge cases under mid-operation cuts -----------------------------

TEST(MutationKobject, DoubleCloseAfterACutLeavesTheHandleLive) {
  Machine m(OsVariant::kWinNT4);
  auto proc = m.acquire_process();
  auto& hub = m.mutations();
  const auto h =
      proc->handles().insert(std::make_shared<sim::EventObject>(true, true, ""));
  ASSERT_TRUE(proc->handles().valid(h));

  hub.arm(FaultPlan{1});
  hub.open_window();
  EXPECT_THROW(proc->handles().close(h), sim::KernelPanic);
  hub.close_window();

  // The cut fired *before* the close applied: the handle is still live, so
  // the world never sees a half-closed slot.
  EXPECT_TRUE(proc->handles().valid(h));
  m.restore(sim::RestoreLevel::kReboot);

  // After reboot the first close is the real one; the second is the ordinary
  // double-close failure, not a crash.
  EXPECT_TRUE(proc->handles().close(h));
  EXPECT_FALSE(proc->handles().close(h));
  m.release_process(std::move(proc));
}

TEST(MutationKobject, HandleValuesRecurExactlyAcrossRecycle) {
  Machine m(OsVariant::kWinNT4);
  auto proc = m.acquire_process();
  const std::size_t boot_handles = proc->handles().size();
  const auto h1 =
      proc->handles().insert(std::make_shared<sim::EventObject>(true, true, ""));
  const auto h2 =
      proc->handles().insert(std::make_shared<sim::PipeObject>());
  m.release_process(std::move(proc));

  // A recycled task is observationally identical to a new one: same handle
  // count, and re-inserting yields the very same handle values.
  auto again = m.acquire_process();
  EXPECT_EQ(again->handles().size(), boot_handles);
  EXPECT_EQ(again->handles().insert(
                std::make_shared<sim::EventObject>(true, true, "")),
            h1);
  EXPECT_EQ(again->handles().insert(std::make_shared<sim::PipeObject>()), h2);
  m.release_process(std::move(again));
}

// Property sweep: checkpoint -> cut-at-k -> restore(kReboot) must yield a
// machine field-identical to a fresh boot for EVERY k, on one MuT per
// crash-campaign group.  "Field-identical" is every observable the crash
// verdict model checks: crash state, arena, fixture tree, and the pristine
// contract of a newly acquired task.
void expect_field_identical_to_fresh_boot(Machine& m) {
  Machine fresh(m.variant());
  EXPECT_EQ(m.crashed(), fresh.crashed());
  EXPECT_EQ(m.panic_kind(), fresh.panic_kind());
  EXPECT_EQ(m.arena().corruption(), fresh.arena().corruption());
  EXPECT_TRUE(m.fs().fixture_clean());
  EXPECT_TRUE(fresh.fs().fixture_clean());

  auto p = m.acquire_process();
  auto q = fresh.acquire_process();
  EXPECT_EQ(p->handles().size(), q->handles().size());
  EXPECT_EQ(p->last_error(), q->last_error());
  EXPECT_EQ(p->err_no(), q->err_no());
  EXPECT_EQ(p->cwd().components, q->cwd().components);
  fresh.release_process(std::move(q));
  m.release_process(std::move(p));
}

TEST(MutationKobject, CutAtEveryPointRestoresToFreshBoot) {
  const auto& world = testing::shared_world();
  const OsVariant v = OsVariant::kWinNT4;
  for (const core::FuncGroup group : {core::FuncGroup::kFileDirAccess,
                                      core::FuncGroup::kMemoryManagement}) {
    // One MuT per group: the first whose early cases announce any points.
    const core::MuT* mut = nullptr;
    std::uint64_t case_index = 0, points = 0;
    Machine m(v);
    core::Executor executor(m);
    auto& hub = m.mutations();
    for (const core::MuT* cand : world.registry.for_variant(v)) {
      if (cand->group != group) continue;
      core::TupleGenerator gen(*cand, 32);
      const std::uint64_t n = std::min<std::uint64_t>(gen.count(), 16);
      for (std::uint64_t i = 0; i < n && points == 0; ++i) {
        hub.reset_counts();
        hub.set_counting(true);
        executor.run_case(*cand, gen.tuple(i), static_cast<std::int64_t>(i));
        hub.set_counting(false);
        if (m.crashed()) m.restore(sim::RestoreLevel::kReboot);
        if (hub.seq() > 0) {
          mut = cand;
          case_index = i;
          points = hub.seq();
        }
      }
      if (mut != nullptr) break;
    }
    ASSERT_NE(mut, nullptr) << "no mutating case found for group "
                            << core::group_name(group);

    core::TupleGenerator gen(*mut, 32);
    const auto tuple = gen.tuple(case_index);
    for (std::uint64_t k = 1; k <= points; ++k) {
      hub.reset_counts();
      hub.arm(FaultPlan{k});
      executor.run_case(*mut, tuple, static_cast<std::int64_t>(case_index));
      EXPECT_EQ(hub.cut_fired_at(), k) << mut->name << " k=" << k;
      hub.disarm();
      ASSERT_TRUE(m.crashed()) << mut->name << " k=" << k;
      m.restore(sim::RestoreLevel::kReboot);
      expect_field_identical_to_fresh_boot(m);
    }
  }
}

}  // namespace
}  // namespace ballista
