// Golden-trace regression tests for the structured kernel-event spine:
// the exact causal chain behind a Win9x hazard crash, the deferred `*`
// interference chain crossing MuT boundaries, sink semantics, rendering,
// and counter determinism across worker counts.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "tests/test_util.h"

namespace ballista::core {
namespace {

using sim::OsVariant;
using trace::EventKind;
using trace::ProbeResult;
using trace::TraceEvent;

// --- TraceSink semantics -----------------------------------------------------

TEST(TraceSink, CountsAndStampsEvents) {
  std::uint64_t clock = 41;
  trace::TraceSink sink(8);
  sink.bind_clock(&clock);
  sink.set_case_index(7);
  sink.emit(trace::fuse_burn_event(3));
  clock = 42;
  sink.emit(trace::panic_event(sim::PanicKind::kDeferredFuse));
  ASSERT_EQ(sink.size(), 2u);
  const auto tail = sink.tail();
  EXPECT_EQ(tail[0].kind, EventKind::kFuseBurn);
  EXPECT_EQ(tail[0].ticks, 41u);
  EXPECT_EQ(tail[0].case_index, 7);
  EXPECT_EQ(tail[1].kind, EventKind::kPanic);
  EXPECT_EQ(tail[1].ticks, 42u);
  EXPECT_EQ(sink.counters()[EventKind::kFuseBurn], 1u);
  EXPECT_EQ(sink.counters()[EventKind::kPanic], 1u);
  EXPECT_EQ(sink.counters().total(), 2u);
}

TEST(TraceSink, RingKeepsOnlyTheLastCapacityEventsInOrder) {
  trace::TraceSink sink(4);
  for (int i = 0; i < 10; ++i) sink.emit(trace::fuse_burn_event(i));
  EXPECT_EQ(sink.size(), 4u);
  const auto tail = sink.tail();
  ASSERT_EQ(tail.size(), 4u);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(tail[static_cast<std::size_t>(i)].fuse.remaining, 6 + i);
  // Counters keep counting past the ring horizon.
  EXPECT_EQ(sink.counters()[EventKind::kFuseBurn], 10u);
  // tail(max) returns the newest suffix.
  const auto last2 = sink.tail(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[0].fuse.remaining, 8);
  EXPECT_EQ(last2[1].fuse.remaining, 9);
}

TEST(TraceSink, CountersOnlyModeSkipsTheRing) {
  trace::TraceSink sink;
  sink.set_mode(trace::TraceSink::Mode::kCountersOnly);
  sink.emit(trace::reboot_event(1));
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.counters()[EventKind::kReboot], 1u);
}

TEST(TraceSink, DisabledModeIsANoOp) {
  trace::TraceSink sink;
  sink.set_mode(trace::TraceSink::Mode::kDisabled);
  sink.emit(trace::reboot_event(1));
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.counters().total(), 0u);
}

TEST(TraceSink, ClearDropsEventsButKeepsModeAndClock) {
  std::uint64_t clock = 5;
  trace::TraceSink sink;
  sink.bind_clock(&clock);
  sink.set_case_index(3);
  sink.emit(trace::reboot_event(1));
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.counters().total(), 0u);
  EXPECT_EQ(sink.case_index(), -1);
  sink.emit(trace::reboot_event(2));  // still enabled, still stamped
  EXPECT_EQ(sink.tail()[0].ticks, 5u);
}

// --- rendering ---------------------------------------------------------------

TEST(TraceRender, GoldenStringsPerKind) {
  EXPECT_EQ(trace::render(trace::syscall_enter_event(-1)), "syscall enter");
  EXPECT_EQ(trace::render(trace::syscall_enter_event(3)),
            "syscall enter (fuse=3)");
  EXPECT_EQ(trace::render(trace::syscall_exit_event(CallStatus::kSuccess, 1)),
            "syscall exit: success ret=1");
  EXPECT_EQ(trace::render(trace::probe_event(ProbeResult::kUnprobed,
                                             0xDEAD0000, 4, true)),
            "probe write 0xdead0000 size=4 -> unprobed");
  EXPECT_EQ(trace::render(trace::probe_event(ProbeResult::kRejected, 0x10, 8,
                                             false)),
            "probe read 0x10 size=8 -> rejected");
  EXPECT_EQ(trace::render(trace::hazard_write_event(0x80005000, 16, true)),
            "unprobed kernel write 0x80005000 size=16 (staging overrun)");
  EXPECT_EQ(trace::render(trace::corruption_event(0x80005000, false)),
            "shared arena corrupted at 0x80005000");
  EXPECT_EQ(trace::render(trace::corruption_event(0x80005000, true)),
            "shared arena corrupted at 0x80005000 (critical)");
  EXPECT_EQ(trace::render(trace::fuse_burn_event(2)),
            "corruption fuse burns: 2 entries remaining");
  // Panic and fault render through the shared sim describe_* formatters, so
  // the trace view and KernelPanic::what() can never drift apart.
  EXPECT_EQ(trace::render(trace::panic_event(sim::PanicKind::kDeferredFuse)),
            sim::describe_panic(sim::PanicKind::kDeferredFuse));
  EXPECT_EQ(trace::render(trace::fault_event(sim::FaultType::kAccessViolation,
                                             0xffff0000, true)),
            sim::describe_fault(sim::Fault{sim::FaultType::kAccessViolation,
                                           0xffff0000, true}));
  EXPECT_EQ(trace::render(trace::reboot_event(2)), "reboot #2");
  EXPECT_EQ(trace::render(trace::shard_event(EventKind::kShardStart, 3, 9)),
            "shard 3 start (9 items)");
  EXPECT_EQ(trace::render(trace::shard_event(EventKind::kShardEnd, 3, 9)),
            "shard 3 end");
  EXPECT_EQ(trace::render(trace::classified_event(
                Outcome::kAbort, sim::FaultType::kAccessViolation, false,
                false)),
            "classified Abort (ACCESS_VIOLATION)");
}

TEST(TraceRender, CountersJsonNamesEveryKind) {
  trace::Counters c;
  c[EventKind::kSyscallEnter] = 12;
  c[EventKind::kPanic] = 1;
  const std::string json = trace::counters_json(c);
  EXPECT_NE(json.find("\"syscall_enter\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"panic\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"probe_decision\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"case_classified\": 0"), std::string::npos);
}

TEST(TraceRender, TailLinesCarryTickAndCaseStamps) {
  std::uint64_t clock = 1'000'003;
  trace::TraceSink sink;
  sink.bind_clock(&clock);
  sink.set_case_index(2);
  sink.emit(trace::fuse_burn_event(1));
  const std::string text = trace::render_tail(sink.tail());
  EXPECT_NE(text.find("tick 1000003 case 2"), std::string::npos);
  EXPECT_NE(text.find("corruption fuse burns: 1 entries remaining"),
            std::string::npos);
}

// --- golden causal chains through the full stack -----------------------------

/// Registry fixture mirroring campaign_test's controllable world: one tiny
/// 4-value type (v2/v3 exceptional), synthetic MuTs with chosen hazards.
class TraceChainTest : public ::testing::Test {
 protected:
  TraceChainTest() {
    auto& t = lib.make("tiny");
    for (int i = 0; i < 4; ++i) {
      t.add("v" + std::to_string(i), i >= 2,
            [i](ValueCtx&) { return static_cast<RawArg>(i); });
    }
    tiny = &lib.get("tiny");
  }

  MuT make(std::string name, ApiImpl impl,
           std::map<OsVariant, CrashStyle> hazards = {}) {
    MuT m;
    m.name = std::move(name);
    m.api = ApiKind::kWin32Sys;
    m.group = FuncGroup::kProcessPrimitives;
    m.params = {tiny};
    m.impl = std::move(impl);
    m.variant_mask = kMaskEverything;
    m.hazards = std::move(hazards);
    return m;
  }

  static std::vector<EventKind> kinds(const std::vector<TraceEvent>& evs) {
    std::vector<EventKind> out;
    for (const TraceEvent& e : evs) out.push_back(e.kind);
    return out;
  }

  TypeLibrary lib;
  const DataType* tiny = nullptr;
  Registry reg;
};

TEST_F(TraceChainTest, ImmediateHazardEmitsTheExactGoldenChain) {
  reg.add(make(
      "imm",
      [](CallContext& c) -> CallOutcome {
        std::uint8_t junk[4] = {};
        if (c.arg32(0) >= 2) (void)c.k_write(0xDEAD0000, junk);
        return ok(0);
      },
      {{OsVariant::kWin95, CrashStyle::kImmediate}}));
  const auto r = Campaign::run_sequential(OsVariant::kWin95, reg);
  const MutStats* s = r.find("imm");
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->catastrophic);
  EXPECT_EQ(s->crash_detail,
            "kernel panic: page fault in kernel context (unprobed user pointer)");
  // The full causal chain, nothing more: enter, the unprobed probe verdict,
  // the kernel-context fault, the panic.
  ASSERT_EQ(kinds(s->crash_trace),
            (std::vector<EventKind>{EventKind::kSyscallEnter,
                                    EventKind::kProbeDecision,
                                    EventKind::kFault, EventKind::kPanic}));
  EXPECT_EQ(s->crash_trace[1].probe.result, ProbeResult::kUnprobed);
  EXPECT_EQ(s->crash_trace[1].probe.addr, 0xDEAD0000u);
  EXPECT_TRUE(s->crash_trace[1].probe.is_write);
  EXPECT_EQ(s->crash_trace[2].fault.type, sim::FaultType::kAccessViolation);
  EXPECT_EQ(s->crash_trace[3].panic.why, sim::PanicKind::kKernelPageFault);
  // Every event in the chain belongs to the crashing case.
  for (const TraceEvent& e : s->crash_trace)
    EXPECT_EQ(e.case_index, s->crash_case);
  EXPECT_TRUE(s->crash_reproducible_single);
}

TEST_F(TraceChainTest, DeferredHazardChainCrossesMutBoundaries) {
  // Corrupts the shared arena via a staging overrun on exceptional args;
  // the machine dies several kernel entries later, in another MuT.
  reg.add(make(
      "hazard",
      [](CallContext& c) -> CallOutcome {
        std::uint8_t junk[4] = {};
        if (c.arg32(0) >= 2) (void)c.k_write(0xDEAD0000, junk);
        return ok(0);
      },
      {{OsVariant::kWin95, CrashStyle::kDeferred}}));
  reg.add(make("fillerA", [](CallContext&) { return ok(0); }));
  reg.add(make("fillerB", [](CallContext&) { return ok(0); }));
  const auto r = Campaign::run_sequential(OsVariant::kWin95, reg);

  // Blame lands on the corruptor, and the crash is the Table 3 `*`.
  const MutStats* s = r.find("hazard");
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->catastrophic);
  EXPECT_FALSE(s->crash_reproducible_single);
  EXPECT_EQ(s->crash_detail,
            "kernel panic: delayed failure from corrupted shared arena");
  ASSERT_FALSE(s->crash_trace.empty());

  const auto& chain = s->crash_trace;
  // The window opens at the corrupting case's own kernel entry...
  EXPECT_EQ(chain.front().kind, EventKind::kSyscallEnter);
  // ...walks the paper's signature: unprobed probe verdict, staging-buffer
  // hazard write, arena corruption...
  auto find_kind = [&](EventKind k) {
    for (std::size_t i = 0; i < chain.size(); ++i)
      if (chain[i].kind == k) return static_cast<std::ptrdiff_t>(i);
    return std::ptrdiff_t{-1};
  };
  const auto probe_at = find_kind(EventKind::kProbeDecision);
  const auto hazard_at = find_kind(EventKind::kHazardWrite);
  const auto corrupt_at = find_kind(EventKind::kArenaCorruption);
  ASSERT_GE(probe_at, 0);
  ASSERT_GE(hazard_at, 0);
  ASSERT_GE(corrupt_at, 0);
  EXPECT_LT(probe_at, hazard_at);
  EXPECT_LT(hazard_at, corrupt_at);
  EXPECT_EQ(chain[static_cast<std::size_t>(probe_at)].probe.result,
            ProbeResult::kUnprobed);
  EXPECT_TRUE(chain[static_cast<std::size_t>(hazard_at)].hazard.staging);
  // ...then the fuse burns down across *later* syscall entries until the
  // machine dies: all six burns are in the window, ending at remaining=0.
  std::vector<const TraceEvent*> burns;
  for (const TraceEvent& e : chain)
    if (e.kind == EventKind::kFuseBurn) burns.push_back(&e);
  const int fuse = sim::personality_for(OsVariant::kWin95).corruption_fuse;
  ASSERT_EQ(burns.size(), static_cast<std::size_t>(fuse));
  EXPECT_EQ(burns.front()->fuse.remaining, fuse - 1);
  EXPECT_EQ(burns.back()->fuse.remaining, 0);
  // The burning entries belong to other MuTs' cases: more than one distinct
  // case index appears in the chain (the visible inter-test interference).
  std::set<std::int64_t> case_stamps;
  for (const TraceEvent& e : chain) case_stamps.insert(e.case_index);
  EXPECT_GT(case_stamps.size(), 1u);
  // The chain ends in the deferred-fuse panic.
  EXPECT_EQ(chain.back().kind, EventKind::kPanic);
  EXPECT_EQ(chain.back().panic.why, sim::PanicKind::kDeferredFuse);
}

TEST_F(TraceChainTest, ExactlyOneProbeDecisionPerMemoryAccessCall) {
  reg.add(make("reader", [](CallContext& c) -> CallOutcome {
    std::uint8_t buf[8] = {};
    const MemStatus s = c.k_read(c.arg_addr(0), buf);
    if (s != MemStatus::kOk) return c.posix_mem_fail(s);
    return ok(0);
  }));
  sim::Machine machine(OsVariant::kLinux);
  Executor ex(machine);
  const MuT* mut = reg.find("reader");
  TupleGenerator gen(*mut, kDefaultCap, 0x8a11157a);
  for (std::uint64_t i = 0; i < gen.count(); ++i) {
    const CaseResult r = ex.run_case(*mut, gen.tuple(i),
                                     static_cast<std::int64_t>(i));
    EXPECT_EQ(r.events[EventKind::kProbeDecision], 1u) << "case " << i;
    EXPECT_EQ(r.events[EventKind::kSyscallEnter], 1u);
    EXPECT_EQ(r.events[EventKind::kCaseClassified], 1u);
    // Linux probes and rejects: no hazard writes, no corruption, ever.
    EXPECT_EQ(r.events[EventKind::kHazardWrite], 0u);
    EXPECT_EQ(r.events[EventKind::kArenaCorruption], 0u);
  }
}

TEST_F(TraceChainTest, SyscallExitOnlyOnNormalReturn) {
  reg.add(make("aborter", [](CallContext& c) -> CallOutcome {
    c.proc().mem().read_u8(0, sim::Access::kUser);  // always faults
    return ok(0);
  }));
  sim::Machine machine(OsVariant::kWinNT4);
  Executor ex(machine);
  const MuT* mut = reg.find("aborter");
  TupleGenerator gen(*mut, kDefaultCap, 0x8a11157a);
  const CaseResult r = ex.run_case(*mut, gen.tuple(0), 0);
  EXPECT_EQ(r.outcome, Outcome::kAbort);
  EXPECT_EQ(r.events[EventKind::kSyscallEnter], 1u);
  EXPECT_EQ(r.events[EventKind::kSyscallExit], 0u);  // abnormal exit
  EXPECT_EQ(r.events[EventKind::kFault], 1u);
}

// --- determinism across schedules -------------------------------------------

TEST_F(TraceChainTest, CountersAreIdenticalAcrossWorkerCounts) {
  reg.add(make(
      "hazard",
      [](CallContext& c) -> CallOutcome {
        std::uint8_t junk[4] = {};
        if (c.arg32(0) >= 2) (void)c.k_write(0xDEAD0000, junk);
        return ok(0);
      },
      {{OsVariant::kWin95, CrashStyle::kDeferred}}));
  reg.add(make("fillerA", [](CallContext&) { return ok(0); }));
  reg.add(make("fillerB", [](CallContext& c) -> CallOutcome {
    std::uint8_t buf[4] = {};
    return c.k_read(c.arg_addr(0), buf) == MemStatus::kOk ? ok(0)
                                                          : c.win_fail(998);
  }));

  const auto reference = Campaign::run_sequential(OsVariant::kWin95, reg);
  EXPECT_GT(reference.event_counters.total(), 0u);
  for (unsigned jobs : {1u, 2u, 4u}) {
    CampaignOptions opt;
    opt.jobs = jobs;
    const auto r = Campaign::run(OsVariant::kWin95, reg, opt);
    EXPECT_EQ(r.event_counters, reference.event_counters)
        << "jobs=" << jobs;
    ASSERT_EQ(r.stats.size(), reference.stats.size());
    for (std::size_t i = 0; i < r.stats.size(); ++i) {
      EXPECT_EQ(r.stats[i].event_counts, reference.stats[i].event_counts)
          << "jobs=" << jobs << " / " << r.stats[i].mut->name;
      ASSERT_EQ(r.stats[i].crash_trace.size(),
                reference.stats[i].crash_trace.size());
      for (std::size_t k = 0; k < r.stats[i].crash_trace.size(); ++k) {
        EXPECT_EQ(r.stats[i].crash_trace[k].kind,
                  reference.stats[i].crash_trace[k].kind);
        EXPECT_EQ(r.stats[i].crash_trace[k].case_index,
                  reference.stats[i].crash_trace[k].case_index);
      }
    }
  }
}

}  // namespace
}  // namespace ballista::core
