// Sim-level tests for the deterministic network stack (sim/net/netstack.h):
// the TCP-like loopback state machine, UDP delivery with deterministic
// drops, buffer bounds, close semantics (orderly vs abortive), the machine
// lifecycle hooks, and the determinism contracts DESIGN.md §12 pins down.
#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sim/net/netstack.h"

namespace ballista::sim {
namespace {

std::shared_ptr<SocketObject> tcp() {
  return std::make_shared<SocketObject>(SockProto::kTcp);
}
std::shared_ptr<SocketObject> udp() {
  return std::make_shared<SocketObject>(SockProto::kUdp);
}

std::vector<std::uint8_t> bytes(std::size_t n, std::uint8_t seed = 7) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed + i);
  return v;
}

TEST(NetStack, BindEphemeralAndConflicts) {
  NetStack net;
  auto a = tcp(), b = tcp(), c = tcp();
  EXPECT_EQ(net.bind(a, NetStack::kLoopbackIp, 7070), NetErr::kOk);
  EXPECT_EQ(a->state(), SockState::kBound);
  EXPECT_EQ(a->local_port, 7070);

  // Port 0 allocates from the deterministic ephemeral range.
  EXPECT_EQ(net.bind(b, NetStack::kAnyIp, 0), NetErr::kOk);
  EXPECT_EQ(b->local_port, NetStack::kFirstEphemeralPort);

  // Conflict unless both ends opted into SO_REUSEADDR.
  EXPECT_EQ(net.bind(c, NetStack::kAnyIp, 7070), NetErr::kAddrInUse);
  // A non-local address is not bindable; a double bind is invalid.
  auto d = tcp();
  EXPECT_EQ(net.bind(d, 0x0a010203, 80), NetErr::kAddrNotAvail);
  EXPECT_EQ(net.bind(a, NetStack::kAnyIp, 7071), NetErr::kInvalid);

  // Same port, different protocol: no conflict (separate namespaces).
  auto u = udp();
  EXPECT_EQ(net.bind(u, NetStack::kAnyIp, 7070), NetErr::kOk);
  EXPECT_EQ(net.bound_count(), 3u);
}

TEST(NetStack, ReuseAddrRequiresBothEnds) {
  NetStack net;
  auto a = udp(), b = udp(), c = udp();
  a->reuse_addr = true;
  EXPECT_EQ(net.bind(a, NetStack::kAnyIp, 9000), NetErr::kOk);
  EXPECT_EQ(net.bind(b, NetStack::kAnyIp, 9000), NetErr::kAddrInUse);
  c->reuse_addr = true;
  EXPECT_EQ(net.bind(c, NetStack::kAnyIp, 9000), NetErr::kOk);
}

TEST(NetStack, ConnectAcceptLifecycle) {
  NetStack net;
  auto listener = tcp();
  ASSERT_EQ(net.bind(listener, NetStack::kAnyIp, 7070), NetErr::kOk);
  ASSERT_EQ(net.listen(listener, 2), NetErr::kOk);
  EXPECT_EQ(listener->state(), SockState::kListening);
  EXPECT_FALSE(listener->signaled());  // nothing to accept yet

  auto client = tcp();
  EXPECT_EQ(net.connect(client, NetStack::kLoopbackIp, 7070), NetErr::kOk);
  EXPECT_EQ(client->state(), SockState::kConnected);
  EXPECT_TRUE(listener->signaled());  // accept pending = readable
  EXPECT_EQ(net.connections_made(), 1u);

  std::shared_ptr<SocketObject> server;
  ASSERT_EQ(net.accept(*listener, &server), NetErr::kOk);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->state(), SockState::kConnected);
  EXPECT_EQ(server->remote_port, client->local_port);
  EXPECT_EQ(client->remote_port, 7070);
  EXPECT_EQ(client->peer(), server);
  EXPECT_FALSE(listener->signaled());  // backlog drained

  // Empty backlog: accept would block.
  EXPECT_EQ(net.accept(*listener, &server), NetErr::kWouldBlock);
}

TEST(NetStack, ConnectFailureModes) {
  NetStack net;
  auto c1 = tcp();
  // No listener on the port.
  EXPECT_EQ(net.connect(c1, NetStack::kLoopbackIp, 6500), NetErr::kConnRefused);
  // Off-box: nothing ever answers.
  EXPECT_EQ(net.connect(c1, 0x0a010203, 80), NetErr::kUnreachable);

  // Backlog full: refused deterministically.
  auto listener = tcp();
  ASSERT_EQ(net.bind(listener, NetStack::kAnyIp, 7070), NetErr::kOk);
  ASSERT_EQ(net.listen(listener, 1), NetErr::kOk);
  auto c2 = tcp(), c3 = tcp();
  EXPECT_EQ(net.connect(c2, NetStack::kLoopbackIp, 7070), NetErr::kOk);
  EXPECT_EQ(net.connect(c3, NetStack::kLoopbackIp, 7070), NetErr::kConnRefused);

  // Double connect and UDP listen are rejected.
  EXPECT_EQ(net.connect(c2, NetStack::kLoopbackIp, 7070), NetErr::kIsConn);
  auto u = udp();
  ASSERT_EQ(net.bind(u, NetStack::kAnyIp, 8000), NetErr::kOk);
  EXPECT_EQ(net.listen(u, 1), NetErr::kOpNotSupp);
}

TEST(NetStack, StreamSendRecvWithBoundedBuffer) {
  NetStack net;
  auto listener = tcp();
  ASSERT_EQ(net.bind(listener, NetStack::kAnyIp, 7070), NetErr::kOk);
  ASSERT_EQ(net.listen(listener, 2), NetErr::kOk);
  auto client = tcp();
  ASSERT_EQ(net.connect(client, NetStack::kLoopbackIp, 7070), NetErr::kOk);
  std::shared_ptr<SocketObject> server;
  ASSERT_EQ(net.accept(*listener, &server), NetErr::kOk);

  const auto msg = bytes(64);
  std::size_t sent = 0;
  ASSERT_EQ(net.send(*client, msg, &sent), NetErr::kOk);
  EXPECT_EQ(sent, 64u);
  EXPECT_TRUE(server->signaled());
  EXPECT_EQ(server->bytes_readable(), 64u);

  // Peek does not consume; a following read sees the same bytes.
  std::vector<std::uint8_t> out(64);
  std::size_t got = 0;
  ASSERT_EQ(net.recv(*server, out, /*peek=*/true, &got), NetErr::kOk);
  EXPECT_EQ(got, 64u);
  EXPECT_EQ(server->bytes_readable(), 64u);
  ASSERT_EQ(net.recv(*server, out, /*peek=*/false, &got), NetErr::kOk);
  EXPECT_EQ(got, 64u);
  EXPECT_EQ(out, msg);
  EXPECT_FALSE(server->signaled());
  ASSERT_EQ(net.recv(*server, out, false, &got), NetErr::kWouldBlock);

  // The receive buffer is a hard bound: sends are partial at the cap, and a
  // send into a full buffer would block.
  const auto big = bytes(NetStack::kRecvBufferCap + 100);
  ASSERT_EQ(net.send(*client, big, &sent), NetErr::kOk);
  EXPECT_EQ(sent, NetStack::kRecvBufferCap);
  ASSERT_EQ(net.send(*client, big, &sent), NetErr::kWouldBlock);
  EXPECT_GE(net.bytes_delivered(), NetStack::kRecvBufferCap + 64);
}

TEST(NetStack, OrderlyCloseGivesEofAbortiveGivesReset) {
  NetStack net;
  auto listener = tcp();
  ASSERT_EQ(net.bind(listener, NetStack::kAnyIp, 7070), NetErr::kOk);
  ASSERT_EQ(net.listen(listener, 2), NetErr::kOk);

  // Orderly: peer drains buffered data, then sees EOF (kOk, 0 bytes).
  auto c1 = tcp();
  ASSERT_EQ(net.connect(c1, NetStack::kLoopbackIp, 7070), NetErr::kOk);
  std::shared_ptr<SocketObject> s1;
  ASSERT_EQ(net.accept(*listener, &s1), NetErr::kOk);
  std::size_t n = 0;
  ASSERT_EQ(net.send(*s1, bytes(8), &n), NetErr::kOk);
  net.on_close(*s1);
  std::vector<std::uint8_t> out(16);
  ASSERT_EQ(net.recv(*c1, out, false, &n), NetErr::kOk);
  EXPECT_EQ(n, 8u);  // drain survives the close
  ASSERT_EQ(net.recv(*c1, out, false, &n), NetErr::kOk);
  EXPECT_EQ(n, 0u);  // EOF
  EXPECT_TRUE(c1->signaled());  // peer-gone keeps the socket readable
  // Sending into a closed peer is a reset.
  EXPECT_EQ(net.send(*c1, bytes(4), &n), NetErr::kConnReset);

  // Abortive: the server handle is destroyed without on_close.
  auto c2 = tcp();
  ASSERT_EQ(net.connect(c2, NetStack::kLoopbackIp, 7070), NetErr::kOk);
  std::shared_ptr<SocketObject> s2;
  ASSERT_EQ(net.accept(*listener, &s2), NetErr::kOk);
  s2.reset();  // vanishes: weak_ptr expires
  EXPECT_EQ(net.recv(*c2, out, false, &n), NetErr::kConnReset);
}

TEST(NetStack, ShutdownSemantics) {
  NetStack net;
  auto listener = tcp();
  ASSERT_EQ(net.bind(listener, NetStack::kAnyIp, 7070), NetErr::kOk);
  ASSERT_EQ(net.listen(listener, 2), NetErr::kOk);
  auto client = tcp();
  ASSERT_EQ(net.connect(client, NetStack::kLoopbackIp, 7070), NetErr::kOk);
  std::shared_ptr<SocketObject> server;
  ASSERT_EQ(net.accept(*listener, &server), NetErr::kOk);

  EXPECT_EQ(net.shutdown(*client, 3), NetErr::kInvalid);  // bad how
  auto fresh = tcp();
  EXPECT_EQ(net.shutdown(*fresh, 1), NetErr::kNotConn);

  ASSERT_EQ(net.shutdown(*client, 1), NetErr::kOk);  // SD_SEND
  std::size_t n = 0;
  EXPECT_EQ(net.send(*client, bytes(4), &n), NetErr::kShutdown);
  // The peer sees the half-close as EOF.
  std::vector<std::uint8_t> out(4);
  EXPECT_EQ(net.recv(*server, out, false, &n), NetErr::kOk);
  EXPECT_EQ(n, 0u);
}

TEST(NetStack, UdpDeliveryAndDeterministicDrops) {
  NetStack net;
  auto rx = udp(), tx = udp();
  ASSERT_EQ(net.bind(rx, NetStack::kAnyIp, 7777), NetErr::kOk);

  // sendto auto-binds the sender's ephemeral port; the receiver learns it.
  ASSERT_EQ(net.sendto(tx, NetStack::kLoopbackIp, 7777, bytes(5)),
            NetErr::kOk);
  EXPECT_EQ(tx->local_port, NetStack::kFirstEphemeralPort);
  EXPECT_TRUE(rx->signaled());
  Datagram d;
  ASSERT_EQ(net.recvfrom(*rx, &d), NetErr::kOk);
  EXPECT_EQ(d.payload, bytes(5));
  EXPECT_EQ(d.src_port, tx->local_port);
  EXPECT_EQ(net.recvfrom(*rx, &d), NetErr::kWouldBlock);

  // No receiver / off-box: dropped, counted, still "success" (UDP).
  ASSERT_EQ(net.sendto(tx, NetStack::kLoopbackIp, 4242, bytes(3)),
            NetErr::kOk);
  ASSERT_EQ(net.sendto(tx, 0x0a010203, 4242, bytes(3)), NetErr::kOk);
  EXPECT_EQ(net.datagrams_dropped(), 2u);

  // Queue bound: datagram kMaxDatagrams+1 is dropped as a pure function of
  // occupancy.
  for (std::size_t i = 0; i < NetStack::kMaxDatagrams + 1; ++i)
    ASSERT_EQ(net.sendto(tx, NetStack::kLoopbackIp, 7777, bytes(1)),
              NetErr::kOk);
  EXPECT_EQ(rx->dgrams.size(), NetStack::kMaxDatagrams);
  EXPECT_EQ(net.datagrams_dropped(), 3u);

  // Oversize datagrams are the sender's error, not a drop.
  EXPECT_EQ(net.sendto(tx, NetStack::kLoopbackIp, 7777,
                       bytes(NetStack::kMaxDatagramSize + 1)),
            NetErr::kMsgSize);
}

TEST(NetStack, ResetClearsBindingsAndCounters) {
  NetStack net;
  auto a = udp();
  ASSERT_EQ(net.bind(a, NetStack::kAnyIp, 0), NetErr::kOk);
  const std::uint16_t first = a->local_port;
  ASSERT_EQ(net.sendto(a, NetStack::kLoopbackIp, 4242, bytes(2)), NetErr::kOk);
  EXPECT_GT(net.bound_count(), 0u);
  EXPECT_GT(net.datagrams_dropped(), 0u);

  net.reset();
  EXPECT_EQ(net.bound_count(), 0u);
  EXPECT_EQ(net.datagrams_dropped(), 0u);
  EXPECT_EQ(net.connections_made(), 0u);

  // Determinism: after reset the ephemeral allocator restarts, so case N+1
  // sees exactly the ports case N saw.
  auto b = udp();
  ASSERT_EQ(net.bind(b, NetStack::kAnyIp, 0), NetErr::kOk);
  EXPECT_EQ(b->local_port, first);
}

TEST(NetStack, MachineRestoreResetsTheStack) {
  Machine m(OsVariant::kWinNT4);
  auto s = udp();
  ASSERT_EQ(m.net().bind(s, NetStack::kAnyIp, 7777), NetErr::kOk);
  EXPECT_EQ(m.net().bound_count(), 1u);
  // Case-level restore: port bindings are case-local like temp files.
  m.restore(RestoreLevel::kCaseReset);
  EXPECT_EQ(m.net().bound_count(), 0u);

  auto s2 = udp();
  ASSERT_EQ(m.net().bind(s2, NetStack::kAnyIp, 7777), NetErr::kOk);
  m.restore(RestoreLevel::kReboot);
  EXPECT_EQ(m.net().bound_count(), 0u);
}

}  // namespace
}  // namespace ballista::sim
