// Deeper semantic tests for the Win32 Process Environment and File/Directory
// groups.
#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "win32/win32.h"

namespace ballista::win32 {
namespace {

using ballista::testing::run_named_case;
using ballista::testing::shared_world;
using core::Outcome;
using sim::OsVariant;

constexpr OsVariant kNT = OsVariant::kWinNT4;

TEST(EnvCalls, ExpandEnvironmentStringsSubstitutes) {
  const auto& w = shared_world();
  sim::Machine m(kNT);
  // Direct API-level check through the context rather than the harness.
  auto proc = m.create_process();
  proc->env()["WHO"] = "ballista";
  const core::MuT* mut = w.registry.find("ExpandEnvironmentStrings");
  const sim::Addr src = proc->mem().alloc_cstr("hello %WHO%!");
  const sim::Addr dst = proc->mem().alloc(256);
  std::vector<core::RawArg> args = {src, dst, 256};
  core::CallContext ctx(m, *proc, *mut, args);
  m.kernel_enter();
  const auto out = mut->impl(ctx);
  EXPECT_EQ(out.status, core::CallStatus::kSuccess);
  EXPECT_EQ(proc->mem().read_cstr(dst, 64, sim::Access::kKernel),
            "hello ballista!");
}

TEST(EnvCalls, UnknownVariableStaysVerbatim) {
  const auto& w = shared_world();
  sim::Machine m(kNT);
  auto proc = m.create_process();
  const core::MuT* mut = w.registry.find("ExpandEnvironmentStrings");
  const sim::Addr src = proc->mem().alloc_cstr("%NO_SUCH_VAR%");
  const sim::Addr dst = proc->mem().alloc(256);
  std::vector<core::RawArg> args = {src, dst, 256};
  core::CallContext ctx(m, *proc, *mut, args);
  m.kernel_enter();
  (void)mut->impl(ctx);
  EXPECT_EQ(proc->mem().read_cstr(dst, 64, sim::Access::kKernel),
            "%NO_SUCH_VAR%");
}

TEST(EnvCalls, SetEnvironmentVariableRejectsEquals) {
  const auto& w = shared_world();
  sim::Machine m(kNT);
  auto proc = m.create_process();
  const core::MuT* mut = w.registry.find("SetEnvironmentVariable");
  const sim::Addr name = proc->mem().alloc_cstr("BAD=NAME");
  const sim::Addr value = proc->mem().alloc_cstr("x");
  std::vector<core::RawArg> args = {name, value};
  core::CallContext ctx(m, *proc, *mut, args);
  m.kernel_enter();
  const auto out = mut->impl(ctx);
  EXPECT_EQ(out.status, core::CallStatus::kErrorReported);
}

TEST(EnvCalls, SetWithNullValueDeletes) {
  const auto& w = shared_world();
  sim::Machine m(kNT);
  auto proc = m.create_process();
  proc->env()["DOOMED"] = "x";
  const core::MuT* mut = w.registry.find("SetEnvironmentVariable");
  const sim::Addr name = proc->mem().alloc_cstr("DOOMED");
  std::vector<core::RawArg> args = {name, 0};
  core::CallContext ctx(m, *proc, *mut, args);
  m.kernel_enter();
  (void)mut->impl(ctx);
  EXPECT_EQ(proc->env().count("DOOMED"), 0u);
}

TEST(EnvCalls, VersionNumbersFollowTheFamily) {
  const auto& w = shared_world();
  auto version_of = [&](OsVariant v) {
    sim::Machine m(v);
    auto proc = m.create_process();
    const core::MuT* mut = w.registry.find("GetVersion");
    std::vector<core::RawArg> args;
    core::CallContext ctx(m, *proc, *mut, args);
    return mut->impl(ctx).ret;
  };
  // 9x family sets the high bit; NT does not.
  EXPECT_NE(version_of(OsVariant::kWin95) & 0x8000'0000ull, 0u);
  EXPECT_NE(version_of(OsVariant::kWin98) & 0x8000'0000ull, 0u);
  EXPECT_EQ(version_of(OsVariant::kWinNT4) & 0x8000'0000ull, 0u);
  EXPECT_EQ(version_of(OsVariant::kWin2000) & 0xffull, 5u);  // major 5
}

TEST(EnvCalls, ComputerNameRoundTrip) {
  const auto& w = shared_world();
  sim::Machine m(kNT);
  auto proc = m.create_process();
  const core::MuT* mut = w.registry.find("GetComputerName");
  const sim::Addr buf = proc->mem().alloc(64);
  const sim::Addr size = proc->mem().alloc(8);
  proc->mem().write_u32(size, 64, sim::Access::kKernel);
  std::vector<core::RawArg> args = {buf, size};
  core::CallContext ctx(m, *proc, *mut, args);
  m.kernel_enter();
  const auto out = mut->impl(ctx);
  EXPECT_EQ(out.ret, 1u);
  EXPECT_EQ(proc->mem().read_cstr(buf, 32, sim::Access::kKernel),
            "BALLISTA-PC");
  // Too-small buffer reports the needed size.
  proc->mem().write_u32(size, 4, sim::Access::kKernel);
  core::CallContext ctx2(m, *proc, *mut, args);
  const auto out2 = mut->impl(ctx2);
  EXPECT_EQ(out2.status, core::CallStatus::kErrorReported);
  EXPECT_EQ(proc->mem().read_u32(size, sim::Access::kKernel), 12u);
}

TEST(EnvCalls, SetComputerNameValidates) {
  const auto& w = shared_world();
  sim::Machine m(kNT);
  EXPECT_EQ(run_named_case(w, kNT, "SetComputerName", {"str_hello"}, &m)
                .outcome,
            Outcome::kPass);
  // 4096-char name: invalid.
  const auto r =
      run_named_case(w, kNT, "SetComputerName", {"str_long"}, &m);
  EXPECT_FALSE(r.success_no_error);
}

TEST(FileCalls, CopyThenDeleteFlow) {
  const auto& w = shared_world();
  sim::Machine m(kNT);
  // CopyFile(fixture -> missing) succeeds.
  const auto r = run_named_case(w, kNT, "CopyFile",
                                {"path_fixture", "path_missing", "int_0"},
                                &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_TRUE(r.success_no_error);
  // Deleting the read-only fixture is denied.
  const auto rd = run_named_case(w, kNT, "DeleteFile", {"path_readonly"}, &m);
  EXPECT_FALSE(rd.success_no_error);
}

TEST(FileCalls, MoveToExistingTargetFails) {
  const auto& w = shared_world();
  sim::Machine m(kNT);
  const auto r = run_named_case(w, kNT, "MoveFile",
                                {"path_fixture", "path_readonly"}, &m);
  EXPECT_FALSE(r.success_no_error);
}

TEST(FileCalls, AttributesReflectNodeState) {
  const auto& w = shared_world();
  sim::Machine m(kNT);
  auto proc = m.create_process();
  const core::MuT* mut = w.registry.find("GetFileAttributes");
  const sim::Addr p = proc->mem().alloc_cstr("/tmp/readonly.dat");
  std::vector<core::RawArg> args = {p};
  core::CallContext ctx(m, *proc, *mut, args);
  m.kernel_enter();
  EXPECT_EQ(mut->impl(ctx).ret & 0x01u, 0x01u);  // FILE_ATTRIBUTE_READONLY
  const sim::Addr d = proc->mem().alloc_cstr("/tmp");
  std::vector<core::RawArg> args2 = {d};
  core::CallContext ctx2(m, *proc, *mut, args2);
  EXPECT_EQ(mut->impl(ctx2).ret & 0x10u, 0x10u);  // FILE_ATTRIBUTE_DIRECTORY
}

TEST(FileCalls, GetTempFileNameCreatesWhenUniqueZero) {
  const auto& w = shared_world();
  sim::Machine m(kNT);
  auto proc = m.create_process();
  const core::MuT* mut = w.registry.find("GetTempFileName");
  const sim::Addr dir = proc->mem().alloc_cstr("/tmp");
  const sim::Addr prefix = proc->mem().alloc_cstr("bal");
  const sim::Addr out = proc->mem().alloc(256);
  std::vector<core::RawArg> args = {dir, prefix, 0, out};
  core::CallContext ctx(m, *proc, *mut, args);
  m.kernel_enter();
  const auto r = mut->impl(ctx);
  EXPECT_EQ(r.status, core::CallStatus::kSuccess);
  const std::string name =
      proc->mem().read_cstr(out, 128, sim::Access::kKernel);
  auto node = m.fs().resolve(m.fs().parse(name, proc->cwd()));
  EXPECT_NE(node, nullptr) << name;
}

TEST(FileCalls, SetFilePointerMethodsAndUnderflow) {
  const auto& w = shared_world();
  sim::Machine m(kNT);
  // SEEK from end (method 2 in pool flags_2).
  EXPECT_EQ(run_named_case(w, kNT, "SetFilePointer",
                           {"h_file_valid", "int_64", "buf_null", "flags_2"},
                           &m)
                .outcome,
            Outcome::kPass);
  // Negative target underflows.
  const auto r = run_named_case(w, kNT, "SetFilePointer",
                                {"h_file_valid", "int_neg1", "buf_null",
                                 "flags_0"},
                                &m);
  EXPECT_FALSE(r.success_no_error);
}

TEST(FileCalls, FileTimeConversionsAreConsistent) {
  const auto& w = shared_world();
  sim::Machine m(kNT);
  auto proc = m.create_process();
  // FILETIME -> SYSTEMTIME -> FILETIME round trip within a minute.
  const core::MuT* f2s = w.registry.find("FileTimeToSystemTime");
  const core::MuT* s2f = w.registry.find("SystemTimeToFileTime");
  const sim::Addr ft = proc->mem().alloc(8);
  proc->mem().write_u64(ft, 0x01BEC233F0E44000ull, sim::Access::kKernel);
  const sim::Addr st = proc->mem().alloc(16);
  const sim::Addr ft2 = proc->mem().alloc(8);
  {
    std::vector<core::RawArg> args = {ft, st};
    core::CallContext ctx(m, *proc, *f2s, args);
    m.kernel_enter();
    EXPECT_EQ(f2s->impl(ctx).ret, 1u);
  }
  {
    std::vector<core::RawArg> args = {st, ft2};
    core::CallContext ctx(m, *proc, *s2f, args);
    EXPECT_EQ(s2f->impl(ctx).ret, 1u);
  }
  const std::uint64_t a = proc->mem().read_u64(ft, sim::Access::kKernel);
  const std::uint64_t b = proc->mem().read_u64(ft2, sim::Access::kKernel);
  // Exact round trip (sub-second truncation only).
  EXPECT_LT(a > b ? a - b : b - a, 10'000'000ull);
}

TEST(FileCalls, FindFirstWildcardEnumeratesScratchDir) {
  const auto& w = shared_world();
  sim::Machine m(kNT);
  auto proc = m.create_process();
  const core::MuT* mut = w.registry.find("FindFirstFile");
  const sim::Addr pat = proc->mem().alloc_cstr("/tmp/*");
  const sim::Addr data = proc->mem().alloc(512);
  std::vector<core::RawArg> args = {pat, data};
  core::CallContext ctx(m, *proc, *mut, args);
  m.kernel_enter();
  const auto r = mut->impl(ctx);
  EXPECT_EQ(r.status, core::CallStatus::kSuccess);
  // First match (alphabetical): fixture.dat, written into the find data.
  EXPECT_EQ(proc->mem().read_cstr(data + 48, 64, sim::Access::kKernel),
            "fixture.dat");
}

TEST(IoCalls, GetStdHandleKnowsTheThreeStreams) {
  const auto& w = shared_world();
  sim::Machine m(kNT);
  auto proc = m.create_process();
  const core::MuT* mut = w.registry.find("GetStdHandle");
  for (std::uint32_t which : {0xfffffff6u, 0xfffffff5u, 0xfffffff4u}) {
    std::vector<core::RawArg> args = {which};
    core::CallContext ctx(m, *proc, *mut, args);
    m.kernel_enter();
    const auto r = mut->impl(ctx);
    EXPECT_EQ(r.status, core::CallStatus::kSuccess);
    EXPECT_NE(proc->handles().get(r.ret), nullptr);
  }
}

}  // namespace
}  // namespace ballista::win32
