// Tests for the lock-free shard scheduling layer: exactly-once delivery
// under concurrent stealing, plan-order owner pops, seeded steal-order
// reproducibility, and the contended-steal counter.  The torture tests run
// real threads so the tsan preset exercises the deque protocol directly.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/workqueue.h"

namespace ballista::core {
namespace {

/// A bare plan skeleton: the queue only ever dereferences Shard::index.
Plan skeleton_plan(std::size_t shards) {
  Plan plan;
  plan.shards.resize(shards);
  for (std::size_t i = 0; i < shards; ++i) plan.shards[i].index = i;
  return plan;
}

TEST(ShardDeque, OwnerPopsAloneDrainEverything) {
  Plan plan = skeleton_plan(7);
  ShardDeque dq(plan.shards.size());
  for (std::size_t i = plan.shards.size(); i-- > 0;)
    dq.seed(&plan.shards[i]);
  // Reverse-seeded, bottom-end pops: out comes plan order.
  for (std::size_t i = 0; i < plan.shards.size(); ++i) {
    const Shard* s = dq.pop();
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->index, i);
  }
  EXPECT_EQ(dq.pop(), nullptr);
  EXPECT_EQ(dq.pop(), nullptr);  // stays empty
}

TEST(ShardDeque, ThievesAloneDrainEverything) {
  Plan plan = skeleton_plan(5);
  ShardDeque dq(plan.shards.size());
  for (const Shard& s : plan.shards) dq.seed(&s);
  bool contended = false;
  // Steals come from the top end: seeding order.
  for (std::size_t i = 0; i < plan.shards.size(); ++i) {
    const Shard* s = dq.steal(contended);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->index, i);
  }
  EXPECT_EQ(dq.steal(contended), nullptr);
  EXPECT_FALSE(contended);  // empty is not contention
}

TEST(ShardQueue, SingleWorkerSeesExactPlanOrder) {
  Plan plan = skeleton_plan(23);
  ShardQueue queue(plan, 1);
  for (std::size_t i = 0; i < plan.shards.size(); ++i) {
    const Shard* s = queue.next(0);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->index, i);
  }
  EXPECT_EQ(queue.next(0), nullptr);
}

TEST(ShardQueue, OwnerDrainsItsOwnDealInPlanOrderBeforeStealing) {
  Plan plan = skeleton_plan(12);
  ShardQueue queue(plan, 3);
  // Worker 1 owns shards 1, 4, 7, 10 and must surface them first, in order.
  for (std::size_t expect : {1u, 4u, 7u, 10u}) {
    const Shard* s = queue.next(1);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->index, expect);
  }
  // After that it steals the other workers' shards until the plan is dry.
  std::set<std::size_t> stolen;
  while (const Shard* s = queue.next(1)) stolen.insert(s->index);
  EXPECT_EQ(stolen.size(), 8u);
}

TEST(ShardQueue, StealOrderIsReproducibleForTheSameSeed) {
  const auto drain_as = [](const Plan& plan, unsigned worker,
                           std::uint64_t seed) {
    ShardQueue queue(plan, 4, seed);
    std::vector<std::size_t> order;
    while (const Shard* s = queue.next(worker)) order.push_back(s->index);
    return order;
  };
  Plan plan = skeleton_plan(41);
  const auto a = drain_as(plan, 2, 123);
  const auto b = drain_as(plan, 2, 123);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), plan.shards.size());
}

TEST(ShardQueue, TortureEveryShardClaimedExactlyOnce) {
  // N workers hammer one queue; every shard must be claimed by exactly one
  // worker.  Repeated across shapes (fewer shards than workers, uneven
  // deals, large plans) and rounds to shake out interleavings.
  for (const auto& [workers, shards] :
       std::vector<std::pair<unsigned, std::size_t>>{
           {2, 1}, {4, 3}, {4, 64}, {8, 1000}}) {
    for (int round = 0; round < 8; ++round) {
      Plan plan = skeleton_plan(shards);
      ShardQueue queue(plan, workers,
                       /*steal_seed=*/0xfeed + round);
      std::vector<std::vector<std::size_t>> claimed(workers);
      std::vector<std::thread> threads;
      std::atomic<unsigned> gate{0};
      for (unsigned w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
          gate.fetch_add(1);
          while (gate.load() < workers) {
          }  // start together: maximize contention
          while (const Shard* s = queue.next(w))
            claimed[w].push_back(s->index);
        });
      }
      for (auto& t : threads) t.join();
      std::set<std::size_t> all;
      std::size_t total = 0;
      for (const auto& c : claimed) {
        total += c.size();
        for (std::size_t i : c)
          EXPECT_TRUE(all.insert(i).second)
              << "shard " << i << " claimed twice (workers=" << workers
              << " shards=" << shards << " round=" << round << ")";
      }
      EXPECT_EQ(total, shards);
      EXPECT_EQ(all.size(), shards);
      // Drained queues stay drained for every caller.
      for (unsigned w = 0; w < workers; ++w)
        EXPECT_EQ(queue.next(w), nullptr);
    }
  }
}

TEST(ShardQueue, ContendedStealsCountOnlyLostRaces) {
  // Single-threaded drains can never lose a race.
  Plan plan = skeleton_plan(30);
  ShardQueue queue(plan, 4);
  while (queue.next(0) != nullptr) {
  }
  EXPECT_EQ(queue.contended_steals(), 0u);
}

}  // namespace
}  // namespace ballista::core
