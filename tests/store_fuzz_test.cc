// Corruption robustness of the store reader: for ANY mutilation of a valid
// log — truncation at every byte boundary, random bit flips, pure garbage —
// read_store must return a valid prefix of the original record stream or a
// clean error, and must never crash, over-read, or silently accept damage
// (run under the asan preset).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/rng.h"
#include "store/store.h"
#include "tests/store_test_util.h"
#include "tests/test_util.h"

namespace ballista::store {
namespace {

using sim::OsVariant;
using testing::TinyWorld;
using testing::tiny_options;

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<std::uint8_t> bytes;
  if (f != nullptr) {
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
      bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
  }
  return bytes;
}

/// A sealed log over the tiny registry: small enough that every-byte
/// truncation loops stay fast, rich enough to hold several shard records.
std::vector<std::uint8_t> tiny_log_bytes() {
  const std::string path = ::testing::TempDir() + "ballista_fuzz." +
                           std::to_string(::getpid()) + ".blog";
  TinyWorld tiny;
  const StoreRun run = run_with_store(OsVariant::kWinNT4, tiny.registry,
                                      tiny_options(), path, /*resume=*/false);
  EXPECT_TRUE(run.ok) << run.error;
  std::vector<std::uint8_t> bytes = file_bytes(path);
  std::remove(path.c_str());
  return bytes;
}

/// The mutilated read must yield a prefix of the intact read's record
/// stream: same header, and every decoded outcome byte-identical (via
/// re-encode) to the original at the same position.  "Recovered something
/// that was never written" is the one unforgivable failure mode.
void expect_prefix_of(const StoreContents& got, const StoreContents& whole) {
  EXPECT_EQ(got.header, whole.header);
  ASSERT_LE(got.outcomes.size(), whole.outcomes.size());
  for (std::size_t i = 0; i < got.outcomes.size(); ++i)
    EXPECT_EQ(encode_shard_outcome(got.outcomes[i]),
              encode_shard_outcome(whole.outcomes[i]))
        << "record " << i << " differs from what was written";
  if (got.complete) {
    EXPECT_TRUE(whole.complete);
    EXPECT_EQ(got.complete_total_cases, whole.complete_total_cases);
    EXPECT_EQ(got.complete_reboots, whole.complete_reboots);
    EXPECT_TRUE(got.complete_counters == whole.complete_counters);
  }
}

TEST(StoreFuzz, TruncationAtEveryByteYieldsValidPrefixOrCleanError) {
  const std::vector<std::uint8_t> full = tiny_log_bytes();
  ASSERT_FALSE(full.empty());
  const StoreContents whole = read_store(full);
  ASSERT_EQ(whole.status, ReadStatus::kOk);
  ASSERT_TRUE(whole.complete);
  ASSERT_FALSE(whole.outcomes.empty());

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(full.begin(),
                                           full.begin() +
                                               static_cast<std::ptrdiff_t>(cut));
    const StoreContents got = read_store(prefix);
    if (got.status == ReadStatus::kBadHeader) continue;  // cut the preamble
    EXPECT_LE(got.valid_bytes, cut);
    expect_prefix_of(got, whole);
    // The completion marker is the last frame, so every strict prefix must
    // read back as still-in-progress.
    EXPECT_FALSE(got.complete) << "cut " << cut;
  }
}

class StoreFuzzSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreFuzzSeeded, SingleBitFlipsAreAlwaysDetected) {
  const std::vector<std::uint8_t> full = tiny_log_bytes();
  const StoreContents whole = read_store(full);
  ASSERT_EQ(whole.status, ReadStatus::kOk);

  SplitMix64 rng(GetParam());
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<std::uint8_t> bent = full;
    const std::size_t byte = rng.next_below(bent.size());
    bent[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    const StoreContents got = read_store(bent);
    // Every byte of a sealed log is covered by the preamble check or a
    // frame CRC: a single flipped bit can never read back clean.
    EXPECT_NE(got.status, ReadStatus::kOk) << "flip at byte " << byte;
    if (got.status != ReadStatus::kBadHeader) expect_prefix_of(got, whole);
  }
}

TEST_P(StoreFuzzSeeded, MultiBitFlipsNeverCrashAndNeverForgeRecords) {
  const std::vector<std::uint8_t> full = tiny_log_bytes();
  const StoreContents whole = read_store(full);
  ASSERT_EQ(whole.status, ReadStatus::kOk);

  SplitMix64 rng(GetParam() ^ 0xf1e2d3c4);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<std::uint8_t> bent = full;
    const std::size_t flips = 1 + rng.next_below(16);
    for (std::size_t i = 0; i < flips; ++i)
      bent[rng.next_below(bent.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    // Sometimes truncate as well, so flips and torn tails compose.
    if (iter % 3 == 0) bent.resize(rng.next_below(bent.size() + 1));
    const StoreContents got = read_store(bent);
    if (got.status == ReadStatus::kBadHeader) continue;
    // Multi-bit damage may in principle cancel in a CRC, but decoded records
    // must still be records that were actually written.
    ASSERT_LE(got.outcomes.size(), whole.outcomes.size());
  }
}

TEST_P(StoreFuzzSeeded, RandomGarbageNeverCrashesTheReader) {
  SplitMix64 rng(GetParam() ^ 0x600dcafe);
  for (int iter = 0; iter < 1500; ++iter) {
    std::vector<std::uint8_t> junk(rng.next_below(512));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    // Bias some buffers toward a valid preamble so the frame walker runs.
    if (junk.size() >= 8 && iter % 2 == 0) {
      junk[0] = 0x42; junk[1] = 0x4C; junk[2] = 0x4F; junk[3] = 0x47;  // BLOG
      junk[4] = 1; junk[5] = 0; junk[6] = 0; junk[7] = 0;
    }
    const StoreContents got = read_store(junk);
    // Garbage may never fabricate a usable log.
    if (got.status == ReadStatus::kOk)
      EXPECT_TRUE(got.outcomes.empty() || !got.complete);
  }
}

TEST(StoreFuzz, SampledTruncationsOfAFullWorldLogRecover) {
  // One pass over a real (full-registry) log too: large frames, crash traces
  // and long strings travel through the recovery path.
  const std::string path = ::testing::TempDir() + "ballista_fuzz_world." +
                           std::to_string(::getpid()) + ".blog";
  core::CampaignOptions opt;
  opt.cap = 20;
  const StoreRun run = run_with_store(
      OsVariant::kWin98, testing::shared_world().registry, opt, path, false);
  ASSERT_TRUE(run.ok) << run.error;
  const std::vector<std::uint8_t> full = file_bytes(path);
  std::remove(path.c_str());
  const StoreContents whole = read_store(full);
  ASSERT_EQ(whole.status, ReadStatus::kOk);

  for (std::size_t cut = 0; cut < full.size(); cut += 211) {
    const std::vector<std::uint8_t> prefix(full.begin(),
                                           full.begin() +
                                               static_cast<std::ptrdiff_t>(cut));
    const StoreContents got = read_store(prefix);
    if (got.status == ReadStatus::kBadHeader) continue;
    expect_prefix_of(got, whole);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreFuzzSeeded,
                         ::testing::Values(1, 42, 0xdeadbeef, 7777));

}  // namespace
}  // namespace ballista::store
