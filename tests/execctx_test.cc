// Tests for the CallContext policy matrix — the heart of the per-OS
// validation architectures.  Each personality must turn the same bad pointer
// into its own characteristic outcome:
//   Linux   -> MemStatus::kError   (EFAULT-style error return)
//   NT/2000 -> SimFault            (exception raised into the task: Abort)
//   Win9x   -> kSilent for obvious garbage, SimFault for subtle garbage
//   hazard  -> KernelPanic (immediate) or arena corruption (deferred)
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ballista::core {
namespace {

using ballista::testing::CallFixture;
using sim::OsVariant;

std::uint8_t buf4[4] = {1, 2, 3, 4};

TEST(CallContext, LinuxBadPointerReturnsError) {
  CallFixture f(OsVariant::kLinux);
  auto ctx = f.ctx();
  EXPECT_EQ(ctx.k_write(0, buf4), MemStatus::kError);
  EXPECT_EQ(ctx.k_write(0xDEAD0000, buf4), MemStatus::kError);
  std::uint8_t out[4];
  EXPECT_EQ(ctx.k_read(0, out), MemStatus::kError);
  // Valid target works and the data lands.
  const sim::Addr a = f.proc->mem().alloc(16);
  EXPECT_EQ(ctx.k_write(a, buf4), MemStatus::kOk);
  EXPECT_EQ(f.proc->mem().read_u8(a + 3, sim::Access::kKernel), 4);
}

TEST(CallContext, LinuxReadOnlyTargetIsErrorNotFault) {
  CallFixture f(OsVariant::kLinux);
  auto ctx = f.ctx();
  const sim::Addr ro = f.proc->mem().alloc(16, sim::kPermRead);
  EXPECT_EQ(ctx.k_write(ro, buf4), MemStatus::kError);
}

TEST(CallContext, NtBadPointerRaisesIntoTask) {
  for (OsVariant v : {OsVariant::kWinNT4, OsVariant::kWin2000}) {
    CallFixture f(v);
    auto ctx = f.ctx();
    EXPECT_THROW(ctx.k_write(0, buf4), sim::SimFault);
    std::uint8_t out[4];
    EXPECT_THROW(ctx.k_read(0xDEAD0000, out), sim::SimFault);
    const sim::Addr a = f.proc->mem().alloc(16);
    EXPECT_EQ(ctx.k_write(a, buf4), MemStatus::kOk);
    EXPECT_FALSE(f.machine.crashed());
  }
}

TEST(CallContext, Win9xStubSwallowsObviousGarbage) {
  CallFixture f(OsVariant::kWin98);
  auto ctx = f.ctx();
  EXPECT_EQ(ctx.k_write(0, buf4), MemStatus::kSilent);          // NULL
  EXPECT_EQ(ctx.k_write(0x100, buf4), MemStatus::kSilent);      // low
  EXPECT_EQ(ctx.k_write(0xC0000000, buf4), MemStatus::kSilent); // kernel
}

TEST(CallContext, Win9xStubMissesSubtleGarbage) {
  CallFixture f(OsVariant::kWin98);
  auto ctx = f.ctx();
  const sim::Addr dangling = f.proc->mem().alloc_dangling(16);
  EXPECT_THROW(ctx.k_write(dangling, buf4), sim::SimFault);  // Abort
  const sim::Addr ro = f.proc->mem().alloc(16, sim::kPermRead);
  EXPECT_THROW(ctx.k_write(ro, buf4), sim::SimFault);
}

TEST(CallContext, ImmediateHazardPanicsOnLowAddress) {
  CallFixture f(OsVariant::kWin98, CrashStyle::kImmediate);
  auto ctx = f.ctx();
  EXPECT_THROW(ctx.k_write(0, buf4), sim::KernelPanic);
  EXPECT_TRUE(f.machine.crashed());
}

TEST(CallContext, ImmediateHazardPanicsOnUnmappedUserAddress) {
  CallFixture f(OsVariant::kWin98, CrashStyle::kImmediate);
  auto ctx = f.ctx();
  const sim::Addr dangling = f.proc->mem().alloc_dangling(16);
  EXPECT_THROW(ctx.k_write(dangling, buf4), sim::KernelPanic);
}

TEST(CallContext, ImmediateHazardSucceedsOnValidMemory) {
  CallFixture f(OsVariant::kWin98, CrashStyle::kImmediate);
  auto ctx = f.ctx();
  const sim::Addr a = f.proc->mem().alloc(16);
  EXPECT_EQ(ctx.k_write(a, buf4), MemStatus::kOk);
  EXPECT_FALSE(f.machine.crashed());
}

TEST(CallContext, DeferredHazardCorruptsAndReportsSuccess) {
  CallFixture f(OsVariant::kWin98, CrashStyle::kDeferred);
  auto ctx = f.ctx();
  const sim::Addr dangling = f.proc->mem().alloc_dangling(16);
  EXPECT_EQ(ctx.k_write(dangling, buf4), MemStatus::kOk);  // "succeeds"
  EXPECT_FALSE(f.machine.crashed());
  EXPECT_GT(f.machine.arena().corruption(), 0);
  // The machine dies a few kernel entries later.
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) f.machine.kernel_enter();
      },
      sim::KernelPanic);
}

TEST(CallContext, DeferredHazardReadAlsoCorrupts) {
  CallFixture f(OsVariant::kWin98, CrashStyle::kDeferred);
  auto ctx = f.ctx();
  std::uint8_t out[4] = {9, 9, 9, 9};
  EXPECT_EQ(ctx.k_read(0xDEAD0000, out), MemStatus::kOk);
  EXPECT_EQ(out[0], 0);  // zero-filled
  EXPECT_GT(f.machine.arena().corruption(), 0);
}

TEST(CallContext, HazardWithoutArenaCannotCorrupt) {
  // A hazard entry on an arena-less personality degrades gracefully.
  CallFixture f(OsVariant::kWinNT4, CrashStyle::kDeferred);
  auto ctx = f.ctx();
  EXPECT_EQ(ctx.k_write(0xDEAD0000, buf4), MemStatus::kOk);
  EXPECT_FALSE(f.machine.crashed());
}

TEST(CallContext, CeSlotAddressingRedirectsGarbageIntoArena) {
  CallFixture f(OsVariant::kWinCE, CrashStyle::kImmediate);
  auto ctx = f.ctx();
  // A garbage user address that is unmapped in the task resolves into the
  // shared slot space in kernel context -> critical corruption -> panic.
  EXPECT_THROW(ctx.k_write(0x20746f6e, buf4), sim::KernelPanic);
  EXPECT_TRUE(f.machine.crashed());
}

TEST(CallContext, CeSlotAddressingLeavesValidAddressesAlone) {
  CallFixture f(OsVariant::kWinCE, CrashStyle::kImmediate);
  auto ctx = f.ctx();
  const sim::Addr a = f.proc->mem().alloc(16);
  EXPECT_EQ(ctx.k_write(a, buf4), MemStatus::kOk);
  EXPECT_EQ(f.proc->mem().read_u8(a, sim::Access::kKernel), 1);
  EXPECT_FALSE(f.machine.crashed());
}

TEST(CallContext, ReadStrPerPolicy) {
  {
    CallFixture f(OsVariant::kLinux);
    auto ctx = f.ctx();
    std::string s;
    EXPECT_EQ(ctx.k_read_str(0, &s), MemStatus::kError);
    const sim::Addr a = f.proc->mem().alloc_cstr("path");
    EXPECT_EQ(ctx.k_read_str(a, &s), MemStatus::kOk);
    EXPECT_EQ(s, "path");
  }
  {
    CallFixture f(OsVariant::kWinNT4);
    auto ctx = f.ctx();
    std::string s;
    EXPECT_THROW(ctx.k_read_str(0, &s), sim::SimFault);
  }
  {
    CallFixture f(OsVariant::kWin95);
    auto ctx = f.ctx();
    std::string s;
    EXPECT_EQ(ctx.k_read_str(0, &s), MemStatus::kSilent);
  }
}

TEST(CallContext, WideStringHelpers) {
  CallFixture f(OsVariant::kWinCE);
  auto ctx = f.ctx();
  const sim::Addr a = f.proc->mem().alloc_wstr(u"unicode");
  std::u16string s;
  EXPECT_EQ(ctx.k_read_wstr(a, &s), MemStatus::kOk);
  EXPECT_EQ(s, u"unicode");
}

TEST(CallContext, ScalarHelpersRoundTrip) {
  CallFixture f(OsVariant::kLinux);
  auto ctx = f.ctx();
  const sim::Addr a = f.proc->mem().alloc(16);
  EXPECT_EQ(ctx.k_write_u32(a, 0xAABBCCDD), MemStatus::kOk);
  std::uint32_t v32 = 0;
  EXPECT_EQ(ctx.k_read_u32(a, &v32), MemStatus::kOk);
  EXPECT_EQ(v32, 0xAABBCCDDu);
  EXPECT_EQ(ctx.k_write_u64(a + 8, 0x1020304050607080ull), MemStatus::kOk);
  std::uint64_t v64 = 0;
  EXPECT_EQ(ctx.k_read_u64(a + 8, &v64), MemStatus::kOk);
  EXPECT_EQ(v64, 0x1020304050607080ull);
}

TEST(CallContext, ErrorPlumbingSetsCodes) {
  CallFixture f(OsVariant::kWinNT4);
  auto ctx = f.ctx();
  const CallOutcome w = ctx.win_fail(87, 0);
  EXPECT_EQ(w.status, CallStatus::kErrorReported);
  EXPECT_EQ(f.proc->last_error(), 87u);

  CallFixture g(OsVariant::kLinux);
  auto gctx = g.ctx();
  const CallOutcome p = gctx.posix_fail(EBADF);
  EXPECT_EQ(p.status, CallStatus::kErrorReported);
  EXPECT_EQ(p.ret, static_cast<std::uint64_t>(-1));
  EXPECT_EQ(g.proc->err_no(), EBADF);
}

TEST(CallContext, MemFailShapesFollowStatus) {
  CallFixture f(OsVariant::kWin95);
  auto ctx = f.ctx();
  EXPECT_EQ(ctx.win_mem_fail(MemStatus::kSilent).status,
            CallStatus::kSilentSuccess);
  EXPECT_EQ(ctx.win_mem_fail(MemStatus::kError).status,
            CallStatus::kErrorReported);
  EXPECT_EQ(ctx.posix_mem_fail(MemStatus::kError).status,
            CallStatus::kErrorReported);
}

TEST(CallContext, ArgAccessors) {
  CallFixture f(OsVariant::kLinux);
  const double pi = 3.25;
  auto ctx =
      f.ctx({42, static_cast<RawArg>(-7) & 0xffffffffull,
             std::bit_cast<RawArg>(pi)});
  EXPECT_EQ(ctx.arg_count(), 3u);
  EXPECT_EQ(ctx.arg32(0), 42u);
  EXPECT_EQ(ctx.argi(1), -7);
  EXPECT_DOUBLE_EQ(ctx.argf(2), 3.25);
}

}  // namespace
}  // namespace ballista::core
