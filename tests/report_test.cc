// Tests for aggregation and normalization: per-MuT rates, uniform-weight
// group averages, Catastrophic exclusion, CE twin shadowing, N/A rules.
#include <gtest/gtest.h>

#include <sstream>

#include "core/report.h"

namespace ballista::core {
namespace {

MuT* leak_mut(std::string name, ApiKind api, FuncGroup group,
              bool twin = false, std::string twin_of = {}) {
  // Report tests build results by hand; MuT descriptors live for the test
  // binary's lifetime.
  auto* m = new MuT;
  m->name = std::move(name);
  m->api = api;
  m->group = group;
  m->variant_mask = kMaskEverything;
  m->has_unicode_twin = twin;
  m->twin_of = std::move(twin_of);
  return m;
}

MutStats stats_for(MuT* m, std::uint64_t executed, std::uint64_t aborts,
                   std::uint64_t restarts = 0, bool catastrophic = false) {
  MutStats s;
  s.mut = m;
  s.planned = executed;
  s.executed = executed;
  s.aborts = aborts;
  s.restarts = restarts;
  s.passes = executed - aborts - restarts;
  s.catastrophic = catastrophic;
  return s;
}

TEST(Report, SummarizeSplitsSysAndClib) {
  CampaignResult r;
  r.variant = sim::OsVariant::kWinNT4;
  r.stats.push_back(stats_for(
      leak_mut("sys1", ApiKind::kWin32Sys, FuncGroup::kIoPrimitives), 100,
      50));
  r.stats.push_back(stats_for(
      leak_mut("sys2", ApiKind::kWin32Sys, FuncGroup::kIoPrimitives), 100, 0));
  r.stats.push_back(stats_for(
      leak_mut("c1", ApiKind::kCLib, FuncGroup::kCString), 100, 10));
  const VariantSummary s = summarize(r);
  EXPECT_EQ(s.sys_tested, 2);
  EXPECT_EQ(s.clib_tested, 1);
  EXPECT_DOUBLE_EQ(s.sys_abort, 0.25);   // uniform MuT weights
  EXPECT_DOUBLE_EQ(s.clib_abort, 0.10);
  EXPECT_DOUBLE_EQ(s.overall_abort, 0.20);
}

TEST(Report, CatastrophicMutsExcludedFromRates) {
  CampaignResult r;
  r.variant = sim::OsVariant::kWin98;
  r.stats.push_back(stats_for(
      leak_mut("good", ApiKind::kWin32Sys, FuncGroup::kIoPrimitives), 100,
      20));
  // The crashing MuT has a wild abort rate from its truncated run; it must
  // not pollute the average.
  r.stats.push_back(
      stats_for(leak_mut("crash", ApiKind::kWin32Sys,
                         FuncGroup::kIoPrimitives),
                3, 3, 0, /*catastrophic=*/true));
  const VariantSummary s = summarize(r);
  EXPECT_EQ(s.sys_tested, 2);
  EXPECT_EQ(s.sys_catastrophic, 1);
  EXPECT_DOUBLE_EQ(s.sys_abort, 0.20);
}

TEST(Report, GroupRateAveragesUniformly) {
  CampaignResult r;
  r.variant = sim::OsVariant::kLinux;
  r.stats.push_back(stats_for(
      leak_mut("a", ApiKind::kPosixSys, FuncGroup::kMemoryManagement), 10, 5));
  r.stats.push_back(stats_for(
      leak_mut("b", ApiKind::kPosixSys, FuncGroup::kMemoryManagement), 1000,
      100, 100));
  const GroupRate g = group_rate(r, FuncGroup::kMemoryManagement);
  EXPECT_EQ(g.functions, 2);
  EXPECT_DOUBLE_EQ(g.abort_rate, (0.5 + 0.1) / 2);
  EXPECT_DOUBLE_EQ(g.restart_rate, 0.05);
  EXPECT_DOUBLE_EQ(g.failure_rate, g.abort_rate + g.restart_rate);
  EXPECT_FALSE(g.no_data);
  EXPECT_FALSE(g.has_catastrophic);
}

TEST(Report, GroupWithMostlyCatastrophicMembersReportsNoData) {
  CampaignResult r;
  r.variant = sim::OsVariant::kWinCE;
  r.stats.push_back(stats_for(
      leak_mut("x", ApiKind::kCLib, FuncGroup::kCStreamIo), 5, 0, 0, true));
  r.stats.push_back(stats_for(
      leak_mut("y", ApiKind::kCLib, FuncGroup::kCStreamIo), 5, 0, 0, true));
  r.stats.push_back(stats_for(
      leak_mut("z", ApiKind::kCLib, FuncGroup::kCStreamIo), 100, 10));
  const GroupRate g = group_rate(r, FuncGroup::kCStreamIo);
  EXPECT_TRUE(g.no_data);  // 2 of 3 catastrophic (paper §4's CE rule)
  EXPECT_TRUE(g.has_catastrophic);
}

TEST(Report, EmptyGroupIsNoData) {
  CampaignResult r;
  r.variant = sim::OsVariant::kWinCE;
  const GroupRate g = group_rate(r, FuncGroup::kCTime);
  EXPECT_TRUE(g.no_data);
  EXPECT_EQ(g.functions, 0);
}

TEST(Report, CeTwinShadowingDropsAsciiVersion) {
  CampaignResult r;
  r.variant = sim::OsVariant::kWinCE;
  r.stats.push_back(stats_for(
      leak_mut("strcpy", ApiKind::kCLib, FuncGroup::kCString, true), 100,
      100));  // ASCII twin with a (deliberately wild) 100% rate
  r.stats.push_back(stats_for(
      leak_mut("wcscpy", ApiKind::kCLib, FuncGroup::kCString, false,
               "strcpy"),
      100, 10));
  const VariantSummary s = summarize(r);
  EXPECT_EQ(s.clib_tested, 1);                // ASCII shadowed
  EXPECT_EQ(s.clib_tested_with_twins, 2);     // parenthesized count
  EXPECT_DOUBLE_EQ(s.clib_abort, 0.10);       // UNICODE rate reported
  const GroupRate g = group_rate(r, FuncGroup::kCString);
  EXPECT_EQ(g.functions, 1);
  EXPECT_DOUBLE_EQ(g.abort_rate, 0.10);
}

TEST(Report, TwinShadowingOnlyAppliesOnCe) {
  CampaignResult r;
  r.variant = sim::OsVariant::kWinNT4;
  r.stats.push_back(stats_for(
      leak_mut("strcpy", ApiKind::kCLib, FuncGroup::kCString, true), 100, 50));
  const VariantSummary s = summarize(r);
  EXPECT_EQ(s.clib_tested, 1);
}

TEST(Report, CatastrophicListSortedAndStarred) {
  CampaignResult r;
  r.variant = sim::OsVariant::kWin98;
  auto crash = stats_for(
      leak_mut("zeta", ApiKind::kWin32Sys, FuncGroup::kIoPrimitives), 2, 0, 0,
      true);
  crash.crash_reproducible_single = true;
  r.stats.push_back(crash);
  auto starred = stats_for(
      leak_mut("alpha", ApiKind::kWin32Sys, FuncGroup::kIoPrimitives), 2, 0, 0,
      true);
  starred.crash_reproducible_single = false;
  r.stats.push_back(starred);
  const auto list = catastrophic_list(r);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].name, "alpha");
  EXPECT_TRUE(list[0].starred);
  EXPECT_EQ(list[1].name, "zeta");
  EXPECT_FALSE(list[1].starred);
}

TEST(Report, PercentFormatting) {
  EXPECT_EQ(percent(0.125), "12.5%");
  EXPECT_EQ(percent(0.0), "0.0%");
  EXPECT_EQ(percent(0.3333, 2), "33.33%");
  EXPECT_EQ(percent(1.0), "100.0%");
}

TEST(Report, GroupNamesAreDistinct) {
  std::set<std::string_view> names;
  for (FuncGroup g : kAllGroups) names.insert(group_name(g));
  EXPECT_EQ(names.size(), kAllGroups.size());
}

TEST(Report, PrintersProduceOutput) {
  CampaignResult r;
  r.variant = sim::OsVariant::kLinux;
  r.stats.push_back(stats_for(
      leak_mut("a", ApiKind::kPosixSys, FuncGroup::kMemoryManagement), 10, 5));
  std::vector<CampaignResult> rs;
  rs.push_back(std::move(r));
  std::ostringstream t1, t2, f1, t3;
  print_table1(t1, rs);
  print_table2(t2, rs);
  print_figure1(f1, rs);
  print_table3(t3, rs);
  EXPECT_NE(t1.str().find("Linux"), std::string::npos);
  EXPECT_NE(t2.str().find("Memory Man"), std::string::npos);
  EXPECT_NE(f1.str().find("#"), std::string::npos);
  EXPECT_NE(t3.str().find("(none)"), std::string::npos);
}

}  // namespace
}  // namespace ballista::core
