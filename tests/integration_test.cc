// Integration tests: the assembled world must have the paper's shape — call
// counts, Catastrophic sets (Table 3), failure-rate orderings, and the
// Silent-failure voting contrast.  Campaigns here run with a reduced cap to
// stay fast; the orderings they assert are cap-insensitive.
#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.h"

namespace ballista {
namespace {

using core::ApiKind;
using core::Campaign;
using core::CampaignOptions;
using core::CampaignResult;
using sim::OsVariant;
using testing::shared_world;

CampaignOptions fast_options() {
  CampaignOptions opt;
  opt.cap = 150;
  return opt;
}

const CampaignResult& campaign_for(OsVariant v) {
  static std::map<OsVariant, CampaignResult> cache = [] {
    std::map<OsVariant, CampaignResult> out;
    for (OsVariant variant : sim::kAllVariants)
      out.emplace(variant,
                  Campaign::run(variant, shared_world().registry,
                                fast_options()));
    return out;
  }();
  return cache.at(v);
}

TEST(WorldCatalog, CallCountsMatchThePaper) {
  const auto& reg = shared_world().registry;
  // Counts only MuTs in the paper's twelve groups: growth groups (sync)
  // share ApiKind::kWin32Sys but sit outside the default campaign.
  const auto paper_count = [&](OsVariant v, ApiKind api) {
    std::size_t n = 0;
    for (const auto& m : reg.muts())
      if (m.supported_on(v) && m.api == api &&
          core::group_descriptor(m.group).in_default_campaign)
        ++n;
    return n;
  };
  // 237 Win32 MuTs = 143 system calls + 94 C functions (§1).
  EXPECT_EQ(paper_count(OsVariant::kWinNT4, ApiKind::kWin32Sys), 143u);
  EXPECT_EQ(paper_count(OsVariant::kWinNT4, ApiKind::kCLib), 94u);
  EXPECT_EQ(paper_count(OsVariant::kWin2000, ApiKind::kWin32Sys), 143u);
  EXPECT_EQ(paper_count(OsVariant::kWin98, ApiKind::kWin32Sys), 143u);
  EXPECT_EQ(paper_count(OsVariant::kWin98SE, ApiKind::kWin32Sys), 143u);
  // "10 Win32 system calls were not supported by Windows 95" (§4).
  EXPECT_EQ(paper_count(OsVariant::kWin95, ApiKind::kWin32Sys), 133u);
  EXPECT_EQ(paper_count(OsVariant::kWin95, ApiKind::kCLib), 94u);
  // "only 71 Win32 system calls and 82 C library functions were tested on
  // Windows CE" (§4) — 108 C implementations counting ASCII+UNICODE.
  EXPECT_EQ(paper_count(OsVariant::kWinCE, ApiKind::kWin32Sys), 71u);
  EXPECT_EQ(paper_count(OsVariant::kWinCE, ApiKind::kCLib), 108u);
  // 91 POSIX system calls + the shared C library on Linux.
  EXPECT_EQ(paper_count(OsVariant::kLinux, ApiKind::kPosixSys), 91u);
  EXPECT_EQ(paper_count(OsVariant::kLinux, ApiKind::kCLib), 94u);
  // Full registry = paper groups + the growth groups: sync (19 MuTs, all on
  // NT4) and sockets (16 Winsock + 12 BSD; per-variant subsets are pinned in
  // sync_group_test.cc / socket_group_test.cc).
  EXPECT_EQ(reg.count_group(core::FuncGroup::kWin32Sync), 19u);
  EXPECT_EQ(reg.count_group(core::FuncGroup::kSockets), 28u);
  EXPECT_EQ(reg.count(OsVariant::kWinNT4, ApiKind::kWin32Sys), 162u + 16u);
}

TEST(WorldCatalog, TwentySixUnicodeTwins) {
  const auto& reg = shared_world().registry;
  int twins = 0, twinned = 0;
  for (const auto& m : reg.muts()) {
    if (!m.twin_of.empty()) ++twins;
    if (m.has_unicode_twin) ++twinned;
  }
  EXPECT_EQ(twins, 26);  // "There were 26 C functions that had both..." (§4)
  EXPECT_EQ(twinned, 26);
}

TEST(WorldCatalog, IoPrimitivesMatchSection33Lists) {
  const auto& reg = shared_world().registry;
  const std::set<std::string> posix_expected = {
      "close", "dup",  "dup2", "fcntl", "fdatasync",
      "fsync", "lseek", "pipe", "read",  "write"};
  const std::set<std::string> win32_expected = {
      "AttachThreadInput", "CloseHandle",   "DuplicateHandle",
      "FlushFileBuffers",  "GetStdHandle",  "LockFile",
      "LockFileEx",        "ReadFile",      "ReadFileEx",
      "SetFilePointer",    "SetStdHandle",  "UnlockFile",
      "UnlockFileEx",      "WriteFile",     "WriteFileEx"};
  std::set<std::string> posix_actual, win32_actual;
  for (const auto& m : reg.muts()) {
    if (m.group != core::FuncGroup::kIoPrimitives) continue;
    (m.api == ApiKind::kPosixSys ? posix_actual : win32_actual)
        .insert(m.name);
  }
  EXPECT_EQ(posix_actual, posix_expected);
  EXPECT_EQ(win32_actual, win32_expected);
}

TEST(WorldCatalog, EveryMutIsWellFormed) {
  const auto& reg = shared_world().registry;
  // Names are unique per (group, api): growth groups may re-register an API
  // name from a paper group (sync's CreateEvent vs process primitives'),
  // which `repro --mut group:Name` disambiguates, and the sockets group
  // registers a Winsock and a BSD MuT under the same name (socket, bind...),
  // disambiguated by the target variant (Registry::find's variant overload).
  std::set<std::tuple<core::FuncGroup, core::ApiKind, std::string>> names;
  for (const auto& m : reg.muts()) {
    EXPECT_TRUE(names.insert({m.group, m.api, m.name}).second)
        << "duplicate MuT " << m.name;
    EXPECT_NE(m.variant_mask, 0) << m.name;
    EXPECT_TRUE(static_cast<bool>(m.impl)) << m.name;
    for (const auto* p : m.params) EXPECT_NE(p, nullptr) << m.name;
    // Hazard entries only make sense where the MuT exists.
    for (const auto& [v, style] : m.hazards)
      EXPECT_TRUE(m.supported_on(v)) << m.name;
  }
}

TEST(PaperShape, NoCatastrophicOnNt2000Linux) {
  for (OsVariant v :
       {OsVariant::kWinNT4, OsVariant::kWin2000, OsVariant::kLinux}) {
    const auto& r = campaign_for(v);
    EXPECT_TRUE(core::catastrophic_list(r).empty()) << sim::variant_name(v);
    EXPECT_EQ(r.reboots, 0) << sim::variant_name(v);
  }
}

std::set<std::string> catastrophic_names(OsVariant v) {
  std::set<std::string> out;
  for (const auto& e : core::catastrophic_list(campaign_for(v)))
    out.insert(e.name);
  return out;
}

TEST(PaperShape, Table3Windows95Exactly) {
  // §4: five Win98 crashes minus MsgWaitForMultipleObjectsEx and strncpy,
  // plus FileTimeToSystemTime, HeapCreate, ReadProcessMemory.
  EXPECT_EQ(catastrophic_names(OsVariant::kWin95),
            (std::set<std::string>{
                "DuplicateHandle", "FileTimeToSystemTime",
                "GetFileInformationByHandle", "GetThreadContext",
                "HeapCreate", "MsgWaitForMultipleObjects",
                "ReadProcessMemory"}));
}

TEST(PaperShape, Table3Windows98Exactly) {
  EXPECT_EQ(catastrophic_names(OsVariant::kWin98),
            (std::set<std::string>{
                "DuplicateHandle", "GetFileInformationByHandle",
                "GetThreadContext", "MsgWaitForMultipleObjects",
                "MsgWaitForMultipleObjectsEx", "fwrite", "strncpy"}));
}

TEST(PaperShape, Table3Windows98SeExactly) {
  // "the same five Win32 API system calls as Windows 98, plus another in the
  // CreateThread() call, but eliminated ... fwrite()" (§4).
  EXPECT_EQ(catastrophic_names(OsVariant::kWin98SE),
            (std::set<std::string>{
                "CreateThread", "DuplicateHandle",
                "GetFileInformationByHandle", "GetThreadContext",
                "MsgWaitForMultipleObjects", "MsgWaitForMultipleObjectsEx",
                "strncpy"}));
}

TEST(PaperShape, Table3WindowsCeSystemCalls) {
  const auto names = catastrophic_names(OsVariant::kWinCE);
  for (const char* expected :
       {"CreateThread", "GetThreadContext", "InterlockedDecrement",
        "InterlockedExchange", "InterlockedIncrement",
        "MsgWaitForMultipleObjects", "MsgWaitForMultipleObjectsEx",
        "ReadProcessMemory", "SetThreadContext", "VirtualAlloc"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(PaperShape, WindowsCeEighteenCLibraryCatastrophics) {
  const auto& r = campaign_for(OsVariant::kWinCE);
  int clib_crashes = 0;
  for (const auto& e : core::catastrophic_list(r))
    if (core::is_clib_group(e.group)) ++clib_crashes;
  // 17 stdio functions from one bad FILE* plus the UNICODE strncpy (§5).
  EXPECT_EQ(clib_crashes, 18);
  const auto s = core::summarize(r);
  EXPECT_EQ(s.clib_catastrophic, 18);
  EXPECT_EQ(s.sys_catastrophic, 10);
}

TEST(PaperShape, StarredEntriesAreInterferenceStyle) {
  const auto& r98 = campaign_for(OsVariant::kWin98);
  std::map<std::string, bool> starred;
  for (const auto& e : core::catastrophic_list(r98))
    starred[e.name] = e.starred;
  EXPECT_TRUE(starred.at("DuplicateHandle"));
  EXPECT_TRUE(starred.at("MsgWaitForMultipleObjectsEx"));
  EXPECT_TRUE(starred.at("fwrite"));
  EXPECT_TRUE(starred.at("strncpy"));
  EXPECT_FALSE(starred.at("GetThreadContext"));
  EXPECT_FALSE(starred.at("MsgWaitForMultipleObjects"));
  EXPECT_FALSE(starred.at("GetFileInformationByHandle"));
}

TEST(PaperShape, AbortRateOrderings) {
  const auto linux_summary = core::summarize(campaign_for(OsVariant::kLinux));
  const auto nt = core::summarize(campaign_for(OsVariant::kWinNT4));
  const auto w95 = core::summarize(campaign_for(OsVariant::kWin95));
  const auto w98 = core::summarize(campaign_for(OsVariant::kWin98));
  // "Linux seems more robust on system calls" (§5).
  EXPECT_LT(linux_summary.sys_abort, w95.sys_abort);
  EXPECT_LT(linux_summary.sys_abort, nt.sys_abort);
  // NT raises exceptions where 9x stubs swallow: higher syscall Abort.
  EXPECT_GT(nt.sys_abort, w98.sys_abort);
  // "...but more susceptible to Abort failures on C library calls" (§5).
  EXPECT_GT(linux_summary.clib_abort, nt.clib_abort);
  EXPECT_GT(linux_summary.clib_abort, w95.clib_abort);
  // Restarts are rare everywhere (§4).
  for (OsVariant v : sim::kAllVariants) {
    EXPECT_LT(core::summarize(campaign_for(v)).overall_restart, 0.02)
        << sim::variant_name(v);
  }
}

TEST(PaperShape, CCharGroupContrast) {
  // "Linux has more than a 30% Abort failure rate for C character
  // operations, whereas all the Windows systems have zero percent" (§4).
  const auto linux_rate =
      core::group_rate(campaign_for(OsVariant::kLinux),
                       core::FuncGroup::kCChar);
  EXPECT_GT(linux_rate.abort_rate, 0.15);
  for (OsVariant v : {OsVariant::kWin95, OsVariant::kWinNT4,
                      OsVariant::kWinCE}) {
    const auto wr = core::group_rate(campaign_for(v), core::FuncGroup::kCChar);
    EXPECT_DOUBLE_EQ(wr.abort_rate, 0.0) << sim::variant_name(v);
  }
}

TEST(PaperShape, LinuxHigherOnClibIoGroups) {
  for (core::FuncGroup g : {core::FuncGroup::kCFileIo,
                            core::FuncGroup::kCStreamIo,
                            core::FuncGroup::kCMemory}) {
    const double linux_rate =
        core::group_rate(campaign_for(OsVariant::kLinux), g).failure_rate;
    const double nt_rate =
        core::group_rate(campaign_for(OsVariant::kWinNT4), g).failure_rate;
    EXPECT_GT(linux_rate, nt_rate) << core::group_name(g);
  }
}

TEST(PaperShape, CeStreamGroupsHaveNoData) {
  // §4: "too many functions with Catastrophic failures to report accurate
  // group failure rates" for CE C file I/O and stream I/O; no C time at all.
  const auto& ce = campaign_for(OsVariant::kWinCE);
  EXPECT_TRUE(core::group_rate(ce, core::FuncGroup::kCFileIo).no_data);
  EXPECT_TRUE(core::group_rate(ce, core::FuncGroup::kCStreamIo).no_data);
  EXPECT_TRUE(core::group_rate(ce, core::FuncGroup::kCTime).no_data);
  EXPECT_EQ(core::group_rate(ce, core::FuncGroup::kCTime).functions, 0);
}

TEST(PaperShape, VotingFindsSilent9xNotNt) {
  std::vector<CampaignResult> desktops;
  for (OsVariant v : sim::kDesktopWindows)
    desktops.push_back(
        Campaign::run(v, shared_world().registry, fast_options()));
  const auto voted = core::vote_silent(desktops);
  // Figure 2: 95/98/98SE silent rates well above NT/2000.
  const double w95 = voted.overall_silent[0];
  const double nt = voted.overall_silent[3];
  const double w2k = voted.overall_silent[4];
  EXPECT_GT(w95, 0.05);
  EXPECT_LT(nt, 0.02);
  EXPECT_LT(w2k, 0.02);
  EXPECT_GT(w95, nt * 3);
}

TEST(PaperShape, IdenticalSeedsGiveIdenticalTuplesAcrossVariants) {
  // §3.1: "the same pseudorandom sampling of test cases was performed in the
  // same order for each system call or C function tested across the
  // different Windows variants."  Case codes for a pure-pass MuT must align.
  const auto& a = campaign_for(OsVariant::kWin95);
  const auto& b = campaign_for(OsVariant::kWin98);
  const auto* ma = a.find("GetTickCount");
  const auto* mb = b.find("GetTickCount");
  ASSERT_NE(ma, nullptr);
  ASSERT_NE(mb, nullptr);
  EXPECT_EQ(ma->planned, mb->planned);
}

TEST(PaperShape, CampaignsAreDeterministic) {
  const auto r1 =
      Campaign::run(OsVariant::kWin98, shared_world().registry,
                    fast_options());
  const auto r2 =
      Campaign::run(OsVariant::kWin98, shared_world().registry,
                    fast_options());
  ASSERT_EQ(r1.stats.size(), r2.stats.size());
  for (std::size_t i = 0; i < r1.stats.size(); ++i) {
    EXPECT_EQ(r1.stats[i].aborts, r2.stats[i].aborts)
        << r1.stats[i].mut->name;
    EXPECT_EQ(r1.stats[i].case_codes, r2.stats[i].case_codes)
        << r1.stats[i].mut->name;
    EXPECT_EQ(r1.stats[i].catastrophic, r2.stats[i].catastrophic)
        << r1.stats[i].mut->name;
  }
  EXPECT_EQ(r1.reboots, r2.reboots);
}

}  // namespace
}  // namespace ballista
