// Deeper semantic tests for the Win32 Process Primitives group: sync-object
// protocols, suspend/resume counting, thread contexts and the Interlocked
// family's actual arithmetic.
#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "win32/win32.h"

namespace ballista::win32 {
namespace {

using core::CallOutcome;
using core::RawArg;
using sim::OsVariant;
using testing::shared_world;

class ProcFixture : public ::testing::Test {
 protected:
  ProcFixture() : machine(OsVariant::kWinNT4) {
    proc = machine.create_process();
  }

  CallOutcome call(const char* name, std::vector<RawArg> args) {
    const core::MuT* mut = shared_world().registry.find(name);
    EXPECT_NE(mut, nullptr) << name;
    last_args = std::move(args);
    core::CallContext ctx(machine, *proc, *mut, last_args);
    machine.kernel_enter();
    return mut->impl(ctx);
  }

  sim::Machine machine;
  std::unique_ptr<sim::SimProcess> proc;
  std::vector<RawArg> last_args;
};

TEST_F(ProcFixture, AutoResetEventConsumesOneWait) {
  const auto ev = call("CreateEvent", {0, 0 /*auto*/, 1 /*signaled*/, 0});
  ASSERT_EQ(ev.status, core::CallStatus::kSuccess);
  EXPECT_EQ(call("WaitForSingleObject", {ev.ret, 100}).ret, 0u);  // WAIT_OBJECT_0
  EXPECT_EQ(call("WaitForSingleObject", {ev.ret, 100}).ret, 0x102u);  // timeout
  EXPECT_EQ(call("SetEvent", {ev.ret}).ret, 1u);
  EXPECT_EQ(call("WaitForSingleObject", {ev.ret, 100}).ret, 0u);
}

TEST_F(ProcFixture, ManualResetEventStaysSignaled) {
  const auto ev = call("CreateEvent", {0, 1 /*manual*/, 1, 0});
  EXPECT_EQ(call("WaitForSingleObject", {ev.ret, 100}).ret, 0u);
  EXPECT_EQ(call("WaitForSingleObject", {ev.ret, 100}).ret, 0u);
  EXPECT_EQ(call("ResetEvent", {ev.ret}).ret, 1u);
  EXPECT_EQ(call("WaitForSingleObject", {ev.ret, 100}).ret, 0x102u);
}

TEST_F(ProcFixture, MutexOwnershipProtocol) {
  const auto mx = call("CreateMutex", {0, 0 /*not owned*/, 0});
  EXPECT_EQ(call("WaitForSingleObject", {mx.ret, 100}).ret, 0u);  // acquired
  // Re-acquiring a held mutex times out in this (non-recursive) model.
  EXPECT_EQ(call("WaitForSingleObject", {mx.ret, 100}).ret, 0x102u);
  EXPECT_EQ(call("ReleaseMutex", {mx.ret}).ret, 1u);
  // Releasing when not held is an error.
  EXPECT_EQ(call("ReleaseMutex", {mx.ret}).status,
            core::CallStatus::kErrorReported);
}

TEST_F(ProcFixture, SemaphoreCountsDownAndUp) {
  const auto sem = call("CreateSemaphore", {0, 2, 2, 0});
  ASSERT_EQ(sem.status, core::CallStatus::kSuccess);
  EXPECT_EQ(call("WaitForSingleObject", {sem.ret, 100}).ret, 0u);
  EXPECT_EQ(call("WaitForSingleObject", {sem.ret, 100}).ret, 0u);
  EXPECT_EQ(call("WaitForSingleObject", {sem.ret, 100}).ret, 0x102u);
  const sim::Addr prev = proc->mem().alloc(8);
  EXPECT_EQ(call("ReleaseSemaphore", {sem.ret, 1, prev}).ret, 1u);
  EXPECT_EQ(proc->mem().read_u32(prev, sim::Access::kKernel), 0u);
  // Releasing beyond the maximum fails.
  EXPECT_EQ(call("ReleaseSemaphore", {sem.ret, 5, 0}).status,
            core::CallStatus::kErrorReported);
}

TEST_F(ProcFixture, CreateSemaphoreValidatesCounts) {
  EXPECT_EQ(call("CreateSemaphore", {0, 5, 2, 0}).status,
            core::CallStatus::kErrorReported);  // initial > max
  EXPECT_EQ(
      call("CreateSemaphore", {0, 0, 0, 0}).status,
      core::CallStatus::kErrorReported);  // max == 0
}

TEST_F(ProcFixture, SuspendResumeCountsNest) {
  const auto h = call("CreateThread", {0, 0, 0x5000, 0, 0, 0});
  ASSERT_EQ(h.status, core::CallStatus::kSuccess);
  EXPECT_EQ(call("SuspendThread", {h.ret}).ret, 0u);   // previous count
  EXPECT_EQ(call("SuspendThread", {h.ret}).ret, 1u);
  EXPECT_EQ(call("ResumeThread", {h.ret}).ret, 2u);
  EXPECT_EQ(call("ResumeThread", {h.ret}).ret, 1u);
  EXPECT_EQ(call("ResumeThread", {h.ret}).ret, 0u);    // already running
}

TEST_F(ProcFixture, ThreadContextRoundTrip) {
  const auto h = call("CreateThread", {0, 0, 0x5000, 0, 0, 0});
  const sim::Addr ctx_buf = proc->mem().alloc(68);
  proc->mem().write_u32(ctx_buf, 0x10007, sim::Access::kKernel);
  // Set register 0 to a marker via SetThreadContext, read it back.
  proc->mem().write_u32(ctx_buf + 4, 0xfeedface, sim::Access::kKernel);
  EXPECT_EQ(call("SetThreadContext", {h.ret, ctx_buf}).ret, 1u);
  const sim::Addr out_buf = proc->mem().alloc(68);
  EXPECT_EQ(call("GetThreadContext", {h.ret, out_buf}).ret, 1u);
  EXPECT_EQ(proc->mem().read_u32(out_buf + 4, sim::Access::kKernel),
            0xfeedfaceu);
}

TEST_F(ProcFixture, CreateThreadRejectsNullStart) {
  EXPECT_EQ(call("CreateThread", {0, 0, 0, 0, 0, 0}).status,
            core::CallStatus::kErrorReported);
}

TEST_F(ProcFixture, CreateThreadWritesTidThroughPointer) {
  const sim::Addr tid_out = proc->mem().alloc(8);
  const auto h = call("CreateThread", {0, 0, 0x5000, 0, 0, tid_out});
  EXPECT_EQ(h.status, core::CallStatus::kSuccess);
  EXPECT_NE(proc->mem().read_u32(tid_out, sim::Access::kKernel), 0u);
}

TEST_F(ProcFixture, InterlockedArithmetic) {
  const sim::Addr v = proc->mem().alloc(8);
  proc->mem().write_u32(v, 10, sim::Access::kKernel);
  EXPECT_EQ(call("InterlockedIncrement", {v}).ret, 11u);
  EXPECT_EQ(call("InterlockedDecrement", {v}).ret, 10u);
  EXPECT_EQ(call("InterlockedExchange", {v, 99}).ret, 10u);  // old value
  EXPECT_EQ(proc->mem().read_u32(v, sim::Access::kKernel), 99u);
  EXPECT_EQ(call("InterlockedExchangeAdd", {v, 1}).ret, 99u);
  EXPECT_EQ(call("InterlockedCompareExchange", {v, 5, 100}).ret, 100u);
  EXPECT_EQ(proc->mem().read_u32(v, sim::Access::kKernel), 5u);
  EXPECT_EQ(call("InterlockedCompareExchange", {v, 7, 42}).ret, 5u);
  EXPECT_EQ(proc->mem().read_u32(v, sim::Access::kKernel), 5u);  // no match
}

TEST_F(ProcFixture, TerminateAndExitCodeFlow) {
  const auto h = call("CreateThread", {0, 0, 0x5000, 0, 0, 0});
  const sim::Addr code = proc->mem().alloc(8);
  EXPECT_EQ(call("GetExitCodeThread", {h.ret, code}).ret, 1u);
  EXPECT_EQ(proc->mem().read_u32(code, sim::Access::kKernel),
            0x103u);  // STILL_ACTIVE
  EXPECT_EQ(call("TerminateThread", {h.ret, 77}).ret, 1u);
  EXPECT_EQ(call("GetExitCodeThread", {h.ret, code}).ret, 1u);
  EXPECT_EQ(proc->mem().read_u32(code, sim::Access::kKernel), 77u);
  // A terminated thread is signaled: waits return immediately.
  EXPECT_EQ(call("WaitForSingleObject", {h.ret, 100}).ret, 0u);
}

TEST_F(ProcFixture, WaitForMultipleWaitAllSemantics) {
  const auto e1 = call("CreateEvent", {0, 1, 1, 0});
  const auto e2 = call("CreateEvent", {0, 1, 0, 0});
  const sim::Addr arr = proc->mem().alloc(16);
  proc->mem().write_u32(arr, static_cast<std::uint32_t>(e1.ret),
                        sim::Access::kKernel);
  proc->mem().write_u32(arr + 4, static_cast<std::uint32_t>(e2.ret),
                        sim::Access::kKernel);
  // wait-any: satisfied by e1.
  EXPECT_EQ(call("WaitForMultipleObjects", {2, arr, 0, 100}).ret, 0u);
  // wait-all: e2 unsignaled -> timeout.
  EXPECT_EQ(call("WaitForMultipleObjects", {2, arr, 1, 100}).ret, 0x102u);
  (void)call("SetEvent", {e2.ret});
  EXPECT_EQ(call("WaitForMultipleObjects", {2, arr, 1, 100}).ret, 0u);
}

TEST_F(ProcFixture, CreateProcessNeedsARealImage) {
  const sim::Addr missing = proc->mem().alloc_cstr("/tmp/absent.exe");
  const sim::Addr pi = proc->mem().alloc(16);
  EXPECT_EQ(call("CreateProcess", {missing, 0, 0, pi}).status,
            core::CallStatus::kErrorReported);
  const sim::Addr image = proc->mem().alloc_cstr("/tmp/fixture.dat");
  const auto r = call("CreateProcess", {image, 0, 0, pi});
  EXPECT_EQ(r.status, core::CallStatus::kSuccess);
  const std::uint32_t h = proc->mem().read_u32(pi, sim::Access::kKernel);
  EXPECT_NE(proc->handles().get(h), nullptr);
}

TEST_F(ProcFixture, SleepAdvancesTheClock) {
  const auto t0 = machine.ticks();
  EXPECT_EQ(call("Sleep", {250}).status, core::CallStatus::kSuccess);
  EXPECT_GE(machine.ticks() - t0, 250u);
}

TEST_F(ProcFixture, PseudoHandlesResolve) {
  EXPECT_EQ(call("GetCurrentProcess", {}).ret, 0xffffffffull);
  EXPECT_EQ(call("GetCurrentThread", {}).ret, 0xfffffffeull);
  const sim::Addr code = proc->mem().alloc(8);
  EXPECT_EQ(call("GetExitCodeProcess", {0xffffffffull, code}).ret, 1u);
  EXPECT_EQ(call("GetExitCodeThread", {0xfffffffeull, code}).ret, 1u);
}

TEST_F(ProcFixture, ThreadPriorityRange) {
  EXPECT_EQ(call("SetThreadPriority",
                 {0xfffffffeull, static_cast<RawArg>(-2) & 0xffffffffull})
                .ret,
            1u);
  EXPECT_EQ(call("GetThreadPriority", {0xfffffffeull}).ret,
            static_cast<RawArg>(-2) & 0xffffffffull);
  EXPECT_EQ(call("SetThreadPriority", {0xfffffffeull, 1000}).status,
            core::CallStatus::kErrorReported);
}

}  // namespace
}  // namespace ballista::win32
