// Tests for the C char and C string families across CRT personalities —
// including the paper's headline C-library contrast: glibc's raw ctype table
// lookup aborts on out-of-domain ints where the MSVC CRT bounds-checks.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ballista::clib {
namespace {

using ballista::testing::run_named_case;
using ballista::testing::shared_world;
using core::Outcome;
using sim::OsVariant;

class CharFamily : public ::testing::TestWithParam<OsVariant> {};

TEST_P(CharFamily, ValidCharactersClassifyCorrectly) {
  sim::Machine m(GetParam());
  const auto& w = shared_world();
  EXPECT_EQ(run_named_case(w, GetParam(), "isalpha", {"ch_a"}, &m).outcome,
            Outcome::kPass);
  EXPECT_EQ(run_named_case(w, GetParam(), "isdigit", {"ch_0"}, &m).outcome,
            Outcome::kPass);
  EXPECT_EQ(run_named_case(w, GetParam(), "isspace", {"ch_space"}, &m).outcome,
            Outcome::kPass);
}

TEST_P(CharFamily, EofIsAlwaysInDomain) {
  sim::Machine m(GetParam());
  const auto r =
      run_named_case(shared_world(), GetParam(), "isalpha", {"ch_eof"}, &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, CharFamily,
                         ::testing::ValuesIn(sim::kAllVariants.begin(),
                                             sim::kAllVariants.end()));

TEST(CharFamilyContrast, GlibcAbortsOnOutOfDomainWindowsDoesNot) {
  const auto& w = shared_world();
  for (const char* value : {"ch_256", "ch_65536", "ch_intmax", "ch_intmin"}) {
    sim::Machine linux_box(OsVariant::kLinux);
    EXPECT_EQ(
        run_named_case(w, OsVariant::kLinux, "isalpha", {value}, &linux_box)
            .outcome,
        Outcome::kAbort)
        << value;
    for (OsVariant v : {OsVariant::kWinNT4, OsVariant::kWin98,
                        OsVariant::kWinCE}) {
      sim::Machine m(v);
      const auto r = run_named_case(w, v, "isalpha", {value}, &m);
      EXPECT_EQ(r.outcome, Outcome::kPass) << value;
      EXPECT_TRUE(r.success_no_error);  // the Windows Silent residue
    }
  }
}

TEST(CharFamilyContrast, SmallNegativesAreInGlibcTableRange) {
  sim::Machine m(OsVariant::kLinux);
  EXPECT_EQ(run_named_case(shared_world(), OsVariant::kLinux, "isalpha",
                           {"ch_neg2"}, &m)
                .outcome,
            Outcome::kPass);
}

TEST(CharFamilyContrast, ToLowerMirrorsTheSplit) {
  const auto& w = shared_world();
  sim::Machine linux_box(OsVariant::kLinux);
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "tolower", {"ch_intmax"},
                           &linux_box)
                .outcome,
            Outcome::kAbort);
  sim::Machine nt(OsVariant::kWinNT4);
  EXPECT_EQ(
      run_named_case(w, OsVariant::kWinNT4, "tolower", {"ch_intmax"}, &nt)
          .outcome,
      Outcome::kPass);
}

class StringFamily : public ::testing::TestWithParam<OsVariant> {};

TEST_P(StringFamily, StrlenOnValidAndBadPointers) {
  const auto& w = shared_world();
  sim::Machine m(GetParam());
  EXPECT_EQ(run_named_case(w, GetParam(), "strlen", {"str_hello"}, &m).outcome,
            Outcome::kPass);
  EXPECT_EQ(run_named_case(w, GetParam(), "strlen", {"str_null"}, &m).outcome,
            Outcome::kAbort);
  EXPECT_EQ(
      run_named_case(w, GetParam(), "strlen", {"str_dangling"}, &m).outcome,
      Outcome::kAbort);
  EXPECT_EQ(run_named_case(w, GetParam(), "strlen", {"str_unterminated"}, &m)
                .outcome,
            Outcome::kAbort);
}

TEST_P(StringFamily, StrcpyFaultsOnBadDestination) {
  const auto& w = shared_world();
  sim::Machine m(GetParam());
  EXPECT_EQ(run_named_case(w, GetParam(), "strcpy", {"buf_64", "str_hello"},
                           &m)
                .outcome,
            Outcome::kPass);
  EXPECT_EQ(run_named_case(w, GetParam(), "strcpy",
                           {"buf_readonly", "str_hello"}, &m)
                .outcome,
            Outcome::kAbort);
}

TEST_P(StringFamily, StrcmpAndStrstrWork) {
  const auto& w = shared_world();
  sim::Machine m(GetParam());
  EXPECT_EQ(
      run_named_case(w, GetParam(), "strcmp", {"str_hello", "str_hello"}, &m)
          .outcome,
      Outcome::kPass);
  EXPECT_EQ(
      run_named_case(w, GetParam(), "strstr", {"str_long", "str_empty"}, &m)
          .outcome,
      Outcome::kPass);
}

INSTANTIATE_TEST_SUITE_P(
    DeskVariants, StringFamily,
    ::testing::Values(OsVariant::kLinux, OsVariant::kWinNT4,
                      OsVariant::kWin98, OsVariant::kWinCE));

TEST(Strncpy, PadsToExactlyN) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  // strncpy(valid dst, "hello", 16): pass.
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "strncpy",
                           {"buf_64", "str_hello", "size_16"}, &m)
                .outcome,
            Outcome::kPass);
  // Huge n overruns the destination into the guard page: Abort.
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "strncpy",
                           {"buf_64", "str_hello", "size_64k"}, &m)
                .outcome,
            Outcome::kAbort);
}

TEST(Strncpy, Win98HazardTurnsBadDestinationIntoDeferredCorruption) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWin98);
  const auto r = run_named_case(w, OsVariant::kWin98, "strncpy",
                                {"buf_dangling", "str_hello", "size_16"}, &m);
  // The staged fast path "succeeds" while corrupting the arena.
  EXPECT_EQ(r.outcome, core::Outcome::kPass);
  EXPECT_GT(m.arena().corruption(), 0);
  // On Windows 95 the same case is an honest Abort (no hazard entry).
  sim::Machine m95(OsVariant::kWin95);
  EXPECT_EQ(run_named_case(w, OsVariant::kWin95, "strncpy",
                           {"buf_dangling", "str_hello", "size_16"}, &m95)
                .outcome,
            Outcome::kAbort);
}

TEST(Strtok, ContinuationWithoutPriorScanAborts) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "strtok",
                           {"buf_null", "str_hello"}, &m)
                .outcome,
            Outcome::kAbort);
}

TEST(Conversions, AtoiParsesAndStrtolValidatesBase) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  EXPECT_EQ(
      run_named_case(w, OsVariant::kLinux, "atoi", {"str_hello"}, &m).outcome,
      Outcome::kPass);
  // Invalid base is a reported error (robust).
  const auto r = run_named_case(w, OsVariant::kLinux, "strtol",
                                {"str_hello", "buf_null", "int_64"}, &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_FALSE(r.success_no_error);
}

TEST(WideTwins, RegisteredForCeOnly) {
  const auto& w = shared_world();
  const core::MuT* wcslen = w.registry.find("wcslen");
  ASSERT_NE(wcslen, nullptr);
  EXPECT_TRUE(wcslen->supported_on(OsVariant::kWinCE));
  EXPECT_FALSE(wcslen->supported_on(OsVariant::kWinNT4));
  EXPECT_EQ(wcslen->twin_of, "strlen");
  EXPECT_TRUE(w.registry.find("strlen")->has_unicode_twin);
}

TEST(WideTwins, WcslenWalksUtf16) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinCE);
  EXPECT_EQ(
      run_named_case(w, OsVariant::kWinCE, "wcslen", {"wstr_hello"}, &m)
          .outcome,
      Outcome::kPass);
  EXPECT_EQ(
      run_named_case(w, OsVariant::kWinCE, "wcslen", {"wstr_null"}, &m)
          .outcome,
      Outcome::kAbort);
}

TEST(WideTwins, TcsncpyDeferredCrashOnCe) {
  const auto& w = shared_world();
  const core::MuT* t = w.registry.find("_tcsncpy");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->hazard_on(OsVariant::kWinCE), core::CrashStyle::kDeferred);
  sim::Machine m(OsVariant::kWinCE);
  const auto r = run_named_case(w, OsVariant::kWinCE, "_tcsncpy",
                                {"buf_dangling", "wstr_hello", "size_16"}, &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);  // deferred: succeeds now...
  EXPECT_GT(m.arena().corruption(), 0);  // ...dies later
}

}  // namespace
}  // namespace ballista::clib
