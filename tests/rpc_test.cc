// Tests for the split (client/server) harness: wire protocol round trips,
// channel delivery, campaign-over-RPC equivalence with the in-process
// campaign, and the Windows CE file-drop arrangement.
#include <gtest/gtest.h>

#include "rpc/harness_rpc.h"
#include "tests/test_util.h"

namespace ballista::rpc {
namespace {

using core::CaseCode;
using sim::OsVariant;
using testing::shared_world;

TEST(Protocol, RequestRoundTrip) {
  const Message m{TestRequest{"GetThreadContext", 1234}};
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(message_type(*decoded), MessageType::kTestRequest);
  const auto& request = std::get<TestRequest>(*decoded);
  EXPECT_EQ(request.mut_name, "GetThreadContext");
  EXPECT_EQ(request.case_index, 1234u);
}

TEST(Protocol, ResultRoundTrip) {
  const Message m{
      TestResult{"strncpy", 7, CaseCode::kAbort, "ACCESS_VIOLATION reading 0x0"}};
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  const auto& result = std::get<TestResult>(*decoded);
  EXPECT_EQ(result.mut_name, "strncpy");
  EXPECT_EQ(result.code, CaseCode::kAbort);
  EXPECT_EQ(result.detail, "ACCESS_VIOLATION reading 0x0");
}

TEST(Protocol, ShardRequestRoundTrip) {
  const Message m{ShardRequest{"VirtualAlloc", 128, 64}};
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(message_type(*decoded), MessageType::kShardRequest);
  const auto& request = std::get<ShardRequest>(*decoded);
  EXPECT_EQ(request.mut_name, "VirtualAlloc");
  EXPECT_EQ(request.first, 128u);
  EXPECT_EQ(request.count, 64u);
}

TEST(Protocol, ShardResultRoundTrip) {
  const Message m{ShardResult{"fclose",
                              7,
                              {CaseCode::kPassWithError, CaseCode::kAbort,
                               CaseCode::kCatastrophic},
                              true,
                              "page fault in kernel context",
                              {}}};
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(message_type(*decoded), MessageType::kShardResult);
  const auto& result = std::get<ShardResult>(*decoded);
  EXPECT_EQ(result.mut_name, "fclose");
  EXPECT_EQ(result.first, 7u);
  EXPECT_EQ(result.codes.size(), 3u);
  EXPECT_EQ(result.codes[2], CaseCode::kCatastrophic);
  EXPECT_TRUE(result.crashed);
  EXPECT_EQ(result.detail, "page fault in kernel context");
}

TEST(Protocol, ShardResultRejectsBadCrashedByteAndBadCodes) {
  const Message m{
      ShardResult{"x", 0, {CaseCode::kPassWithError}, false, "", {}}};
  Frame enc = encode(m);
  // Layout: type(1) + name(8+1) + first(8) + ncodes(8) + codes(1) + crashed.
  // These offsets are a v1 compatibility pin: protocol v2 must not move them.
  const std::size_t code_at = 1 + 8 + 1 + 8 + 8;
  Frame bad_code = enc;
  bad_code[code_at] = 200;
  EXPECT_FALSE(decode(bad_code).has_value());
  Frame bad_crashed = enc;
  bad_crashed[code_at + 1] = 2;  // would not re-encode byte-exactly
  EXPECT_FALSE(decode(bad_crashed).has_value());
}

TEST(Protocol, ShutdownRoundTrip) {
  const auto decoded = decode(encode(Message{Shutdown{}}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(message_type(*decoded), MessageType::kShutdown);
}

TEST(Protocol, MalformedFramesAreRejected) {
  EXPECT_FALSE(decode({}).has_value());
  EXPECT_FALSE(decode({99}).has_value());          // unknown type
  EXPECT_FALSE(decode({1, 5, 0, 0}).has_value());  // truncated request
  // Trailing garbage after a valid shutdown.
  EXPECT_FALSE(decode({4, 0}).has_value());
  // Huge declared string length.
  Frame f{1};
  for (int i = 0; i < 8; ++i) f.push_back(0xff);
  EXPECT_FALSE(decode(f).has_value());
  // Out-of-range case code.
  Frame enc = encode(Message{TestResult{"x", 0, CaseCode::kPassWithError, ""}});
  // The code byte sits right after name(8+1) + index(8) + type(1).
  enc[1 + 8 + 1 + 8] = 200;
  EXPECT_FALSE(decode(enc).has_value());
}

// --- protocol v2: the campaign-service message set ---------------------------

TEST(Protocol, HelloRoundTrip) {
  Hello h;
  h.spec.variant = 2;
  h.spec.cap = 40;
  h.spec.seed = 0x1234;
  h.spec.has_group_filter = 1;
  h.spec.group_mask = 0x5;
  const auto decoded = decode(encode(Message{h}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(message_type(*decoded), MessageType::kHello);
  const auto& hello = std::get<Hello>(*decoded);
  EXPECT_EQ(hello.protocol_version, kProtocolVersion);
  EXPECT_EQ(hello.spec.variant, 2);
  EXPECT_EQ(hello.spec.cap, 40u);
  EXPECT_EQ(hello.spec.seed, 0x1234u);
  EXPECT_EQ(hello.spec.group_mask, 0x5u);
}

TEST(Protocol, HelloWithForeignVersionStillDecodes) {
  // Version checking is the server's job (it answers kBadVersion); the
  // decoder must hand the frame over instead of dropping it silently.
  Hello h;
  h.protocol_version = 999;
  const auto decoded = decode(encode(Message{h}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<Hello>(*decoded).protocol_version, 999u);
}

TEST(Protocol, AttachRoundTrip) {
  const Message m{Attach{42, 9, 1234, {0, 3, 8}}};
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  const auto& attach = std::get<Attach>(*decoded);
  EXPECT_EQ(attach.session_id, 42u);
  EXPECT_EQ(attach.plan_shards, 9u);
  EXPECT_EQ(attach.total_planned, 1234u);
  EXPECT_EQ(attach.complete, (std::vector<std::uint64_t>{0, 3, 8}));
}

TEST(Protocol, DetachAndErrorRoundTrip) {
  const auto detach = decode(encode(Message{Detach{7}}));
  ASSERT_TRUE(detach.has_value());
  EXPECT_EQ(std::get<Detach>(*detach).session_id, 7u);

  const Message m{Error{ErrorCode::kSessionSealed, 7, "campaign already complete"}};
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  const auto& error = std::get<Error>(*decoded);
  EXPECT_EQ(error.code, ErrorCode::kSessionSealed);
  EXPECT_EQ(error.session_id, 7u);
  EXPECT_EQ(error.message, "campaign already complete");
}

TEST(Protocol, ErrorRejectsUnknownCode) {
  Frame enc = encode(Message{Error{ErrorCode::kMalformed, 0, ""}});
  enc[1] = 200;  // code byte directly follows the type tag
  EXPECT_FALSE(decode(enc).has_value());
}

TEST(Protocol, StreamedShardCarriesTheStoreRecordEncoding) {
  StreamedShard s;
  s.session_id = 3;
  s.outcome.shard_index = 5;
  s.outcome.executed_cases = 17;
  s.outcome.reboots = 1;
  s.outcome.partials.push_back({2, 10, {}});
  auto& stats = s.outcome.partials.back().stats;
  stats.executed = 17;
  stats.aborts = 4;
  stats.catastrophic = true;
  stats.crash_detail = "page fault";
  stats.case_codes = {CaseCode::kAbort, CaseCode::kCatastrophic};
  const auto decoded = decode(encode(Message{s}));
  ASSERT_TRUE(decoded.has_value());
  const auto& streamed = std::get<StreamedShard>(*decoded);
  EXPECT_EQ(streamed.session_id, 3u);
  EXPECT_EQ(streamed.outcome.shard_index, 5u);
  EXPECT_EQ(streamed.outcome.executed_cases, 17u);
  ASSERT_EQ(streamed.outcome.partials.size(), 1u);
  EXPECT_EQ(streamed.outcome.partials[0].stats.aborts, 4u);
  EXPECT_EQ(streamed.outcome.partials[0].stats.crash_detail, "page fault");
}

TEST(Protocol, CompleteRoundTrip) {
  Complete c;
  c.session_id = 11;
  c.total_cases = 4096;
  c.reboots = 3;
  c.counters[trace::EventKind::kSyscallEnter] = 99;
  const auto decoded = decode(encode(Message{c}));
  ASSERT_TRUE(decoded.has_value());
  const auto& complete = std::get<Complete>(*decoded);
  EXPECT_EQ(complete.session_id, 11u);
  EXPECT_EQ(complete.total_cases, 4096u);
  EXPECT_EQ(complete.reboots, 3);
  EXPECT_EQ(complete.counters[trace::EventKind::kSyscallEnter], 99u);
}

TEST(Protocol, DescribeNamesEveryMessageType) {
  const Message samples[] = {
      Message{TestRequest{"f", 0}},
      Message{TestResult{"f", 0, CaseCode::kPassWithError, ""}},
      Message{RebootNotice{TestResult{"f", 0, CaseCode::kCatastrophic, ""}}},
      Message{Shutdown{}},
      Message{ShardRequest{"f", 0, 1}},
      Message{ShardResult{"f", 0, {}, false, "", {}}},
      Message{Hello{}},
      Message{Attach{1, 2, 3, {}}},
      Message{Detach{1}},
      Message{Error{ErrorCode::kMalformed, 0, "x"}},
      Message{StreamedShard{}},
      Message{Complete{}},
  };
  for (const Message& m : samples) {
    const std::string line = describe(m);
    EXPECT_NE(line.find(message_type_name(message_type(m))),
              std::string::npos)
        << line;
  }
}

TEST(Channel, DeliversInOrderBothWays) {
  Channel ch;
  ch.a().send({1, 2, 3});
  ch.a().send({4});
  EXPECT_TRUE(ch.b().has_pending());
  EXPECT_EQ(*ch.b().try_recv(), (Frame{1, 2, 3}));
  EXPECT_EQ(*ch.b().try_recv(), (Frame{4}));
  EXPECT_FALSE(ch.b().try_recv().has_value());
  ch.b().send({9});
  EXPECT_EQ(*ch.a().try_recv(), (Frame{9}));
}

TEST(Channel, BoundedInboxRefusesAndCountsWhenFull) {
  Channel ch(2);
  EXPECT_EQ(ch.a().capacity(), 2u);
  EXPECT_TRUE(ch.a().send({1}));
  EXPECT_TRUE(ch.a().send({2}));
  EXPECT_FALSE(ch.a().send({3}));  // peer inbox full: refused, not queued
  EXPECT_FALSE(ch.a().send({4}));
  EXPECT_EQ(ch.a().frames_sent(), 2u);
  EXPECT_EQ(ch.a().refused(), 2u);
  EXPECT_EQ(ch.b().pending(), 2u);
  // Draining one slot re-admits exactly one frame.
  EXPECT_EQ(*ch.b().try_recv(), (Frame{1}));
  EXPECT_TRUE(ch.a().send({5}));
  EXPECT_FALSE(ch.a().send({6}));
  EXPECT_EQ(*ch.b().try_recv(), (Frame{2}));
  EXPECT_EQ(*ch.b().try_recv(), (Frame{5}));
  EXPECT_FALSE(ch.b().try_recv().has_value());
}

TEST(Channel, DirectionsAreBoundedIndependently) {
  Channel ch(1);
  EXPECT_TRUE(ch.a().send({1}));
  EXPECT_FALSE(ch.a().send({2}));
  // b -> a is its own queue: a full a -> b direction does not block it.
  EXPECT_TRUE(ch.b().send({9}));
  EXPECT_EQ(*ch.a().try_recv(), (Frame{9}));
}

TEST(RpcCampaign, MatchesInProcessCampaignOnLinux) {
  const auto& world = shared_world();
  core::CampaignOptions opt;
  opt.cap = 40;
  const auto direct =
      core::Campaign::run(OsVariant::kLinux, world.registry, opt);

  Channel ch;
  TestClient client(ch.b(), OsVariant::kLinux, world.registry, 40,
                    opt.seed);
  TestServer server(ch.a(), world.registry, 40, opt.seed);
  const auto over_rpc =
      server.run(OsVariant::kLinux, [&] { client.poll(); });

  ASSERT_EQ(direct.stats.size(), over_rpc.stats.size());
  for (std::size_t i = 0; i < direct.stats.size(); ++i) {
    EXPECT_EQ(direct.stats[i].mut->name, over_rpc.stats[i].mut->name);
    EXPECT_EQ(direct.stats[i].aborts, over_rpc.stats[i].aborts)
        << direct.stats[i].mut->name;
    EXPECT_EQ(direct.stats[i].restarts, over_rpc.stats[i].restarts)
        << direct.stats[i].mut->name;
    EXPECT_EQ(direct.stats[i].passes, over_rpc.stats[i].passes)
        << direct.stats[i].mut->name;
  }
  EXPECT_EQ(direct.total_cases, over_rpc.total_cases);
}

TEST(RpcCampaign, CrashesAreReportedAndRebooted) {
  const auto& world = shared_world();
  Channel ch;
  TestClient client(ch.b(), OsVariant::kWin98, world.registry, 30,
                    0x8a11157a);
  TestServer server(ch.a(), world.registry, 30, 0x8a11157a);
  const auto result = server.run(OsVariant::kWin98, [&] { client.poll(); });
  const auto* gtc = result.find("GetThreadContext");
  ASSERT_NE(gtc, nullptr);
  EXPECT_TRUE(gtc->catastrophic);
  EXPECT_TRUE(gtc->crash_reproducible_single);  // Listing 1 reproduces
  EXPECT_GT(client.reboots(), 0);
  EXPECT_GT(result.reboots, 0);
}

TEST(CeFileDrop, ResultsTravelThroughTheTargetFilesystem) {
  const auto& world = shared_world();
  sim::Machine target(OsVariant::kWinCE);
  CeFileDropClient client(target, world.registry, 30, 0x8a11157a);
  ASSERT_TRUE(client.execute({"GetTickCount", 0}));
  // The result file is on the target.
  auto& fs = target.fs();
  auto node = fs.resolve(fs.parse("/tmp/ballista_result.txt",
                                  sim::FileSystem::root_path()));
  ASSERT_NE(node, nullptr);
  const std::string text(node->data().begin(), node->data().end());
  EXPECT_NE(text.find("GetTickCount 0"), std::string::npos);
}

TEST(CeFileDrop, CrashLeavesNoResultFile) {
  const auto& world = shared_world();
  sim::Machine target(OsVariant::kWinCE);
  CeFileDropClient client(target, world.registry, 30, 0x8a11157a);
  // Find the Listing 1 case index: run through a few cases of
  // GetThreadContext until the machine dies.
  const core::MuT* mut = world.registry.find("GetThreadContext");
  core::TupleGenerator gen(*mut, 30, 0x8a11157a);
  bool crashed = false;
  for (std::uint64_t i = 0; i < gen.count(); ++i) {
    if (!client.execute({"GetThreadContext", i})) {
      crashed = true;
      break;
    }
  }
  EXPECT_TRUE(crashed);
  EXPECT_TRUE(target.crashed());
}

TEST(CeFileDrop, FullCampaignReproducesCeCatastrophics) {
  const auto result =
      run_ce_file_drop_campaign(shared_world().registry, /*cap=*/40);
  EXPECT_EQ(result.variant, OsVariant::kWinCE);
  const auto list = core::catastrophic_list(result);
  std::set<std::string> names;
  for (const auto& e : list) names.insert(e.name);
  EXPECT_TRUE(names.count("GetThreadContext"));
  EXPECT_TRUE(names.count("VirtualAlloc"));
  EXPECT_TRUE(names.count("fclose"));
  EXPECT_GT(result.reboots, 10);
}

TEST(CeFileDrop, IsSlowerByOrdersOfMagnitude) {
  // §3.2: each CE case costs seconds of target time.
  const auto& world = shared_world();
  sim::Machine target(OsVariant::kWinCE);
  CeFileDropClient client(target, world.registry, 30, 0x8a11157a);
  const auto t0 = target.ticks();
  ASSERT_TRUE(client.execute({"GetTickCount", 0}));
  EXPECT_GT(target.ticks() - t0, 5'000u);
}

}  // namespace
}  // namespace ballista::rpc
