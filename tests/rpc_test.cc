// Tests for the split (client/server) harness: wire protocol round trips,
// channel delivery, campaign-over-RPC equivalence with the in-process
// campaign, and the Windows CE file-drop arrangement.
#include <gtest/gtest.h>

#include "rpc/harness_rpc.h"
#include "tests/test_util.h"

namespace ballista::rpc {
namespace {

using core::CaseCode;
using sim::OsVariant;
using testing::shared_world;

TEST(Protocol, RequestRoundTrip) {
  Message m;
  m.type = MessageType::kTestRequest;
  m.request = {"GetThreadContext", 1234};
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MessageType::kTestRequest);
  EXPECT_EQ(decoded->request.mut_name, "GetThreadContext");
  EXPECT_EQ(decoded->request.case_index, 1234u);
}

TEST(Protocol, ResultRoundTrip) {
  Message m;
  m.type = MessageType::kTestResult;
  m.result = {"strncpy", 7, CaseCode::kAbort, "ACCESS_VIOLATION reading 0x0"};
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->result.mut_name, "strncpy");
  EXPECT_EQ(decoded->result.code, CaseCode::kAbort);
  EXPECT_EQ(decoded->result.detail, "ACCESS_VIOLATION reading 0x0");
}

TEST(Protocol, ShardRequestRoundTrip) {
  Message m;
  m.type = MessageType::kShardRequest;
  m.shard_request = {"VirtualAlloc", 128, 64};
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MessageType::kShardRequest);
  EXPECT_EQ(decoded->shard_request.mut_name, "VirtualAlloc");
  EXPECT_EQ(decoded->shard_request.first, 128u);
  EXPECT_EQ(decoded->shard_request.count, 64u);
}

TEST(Protocol, ShardResultRoundTrip) {
  Message m;
  m.type = MessageType::kShardResult;
  m.shard_result = {"fclose",
                    7,
                    {CaseCode::kPassWithError, CaseCode::kAbort,
                     CaseCode::kCatastrophic},
                    true,
                    "page fault in kernel context"};
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MessageType::kShardResult);
  EXPECT_EQ(decoded->shard_result.mut_name, "fclose");
  EXPECT_EQ(decoded->shard_result.first, 7u);
  EXPECT_EQ(decoded->shard_result.codes.size(), 3u);
  EXPECT_EQ(decoded->shard_result.codes[2], CaseCode::kCatastrophic);
  EXPECT_TRUE(decoded->shard_result.crashed);
  EXPECT_EQ(decoded->shard_result.detail, "page fault in kernel context");
}

TEST(Protocol, ShardResultRejectsBadCrashedByteAndBadCodes) {
  Message m;
  m.type = MessageType::kShardResult;
  m.shard_result = {"x", 0, {CaseCode::kPassWithError}, false, ""};
  Frame enc = encode(m);
  // Layout: type(1) + name(8+1) + first(8) + ncodes(8) + codes(1) + crashed.
  const std::size_t code_at = 1 + 8 + 1 + 8 + 8;
  Frame bad_code = enc;
  bad_code[code_at] = 200;
  EXPECT_FALSE(decode(bad_code).has_value());
  Frame bad_crashed = enc;
  bad_crashed[code_at + 1] = 2;  // would not re-encode byte-exactly
  EXPECT_FALSE(decode(bad_crashed).has_value());
}

TEST(Protocol, ShutdownRoundTrip) {
  Message m;
  m.type = MessageType::kShutdown;
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MessageType::kShutdown);
}

TEST(Protocol, MalformedFramesAreRejected) {
  EXPECT_FALSE(decode({}).has_value());
  EXPECT_FALSE(decode({99}).has_value());          // unknown type
  EXPECT_FALSE(decode({1, 5, 0, 0}).has_value());  // truncated request
  // Trailing garbage after a valid shutdown.
  EXPECT_FALSE(decode({4, 0}).has_value());
  // Huge declared string length.
  Frame f{1};
  for (int i = 0; i < 8; ++i) f.push_back(0xff);
  EXPECT_FALSE(decode(f).has_value());
  // Out-of-range case code.
  Message m;
  m.type = MessageType::kTestResult;
  m.result = {"x", 0, CaseCode::kPassWithError, ""};
  Frame enc = encode(m);
  // The code byte sits right after name(8+1) + index(8) + type(1).
  enc[1 + 8 + 1 + 8] = 200;
  EXPECT_FALSE(decode(enc).has_value());
}

TEST(Channel, DeliversInOrderBothWays) {
  Channel ch;
  ch.a().send({1, 2, 3});
  ch.a().send({4});
  EXPECT_TRUE(ch.b().has_pending());
  EXPECT_EQ(*ch.b().try_recv(), (Frame{1, 2, 3}));
  EXPECT_EQ(*ch.b().try_recv(), (Frame{4}));
  EXPECT_FALSE(ch.b().try_recv().has_value());
  ch.b().send({9});
  EXPECT_EQ(*ch.a().try_recv(), (Frame{9}));
}

TEST(RpcCampaign, MatchesInProcessCampaignOnLinux) {
  const auto& world = shared_world();
  core::CampaignOptions opt;
  opt.cap = 40;
  const auto direct =
      core::Campaign::run(OsVariant::kLinux, world.registry, opt);

  Channel ch;
  TestClient client(ch.b(), OsVariant::kLinux, world.registry, 40,
                    opt.seed);
  TestServer server(ch.a(), world.registry, 40, opt.seed);
  const auto over_rpc =
      server.run(OsVariant::kLinux, [&] { client.poll(); });

  ASSERT_EQ(direct.stats.size(), over_rpc.stats.size());
  for (std::size_t i = 0; i < direct.stats.size(); ++i) {
    EXPECT_EQ(direct.stats[i].mut->name, over_rpc.stats[i].mut->name);
    EXPECT_EQ(direct.stats[i].aborts, over_rpc.stats[i].aborts)
        << direct.stats[i].mut->name;
    EXPECT_EQ(direct.stats[i].restarts, over_rpc.stats[i].restarts)
        << direct.stats[i].mut->name;
    EXPECT_EQ(direct.stats[i].passes, over_rpc.stats[i].passes)
        << direct.stats[i].mut->name;
  }
  EXPECT_EQ(direct.total_cases, over_rpc.total_cases);
}

TEST(RpcCampaign, CrashesAreReportedAndRebooted) {
  const auto& world = shared_world();
  Channel ch;
  TestClient client(ch.b(), OsVariant::kWin98, world.registry, 30,
                    0x8a11157a);
  TestServer server(ch.a(), world.registry, 30, 0x8a11157a);
  const auto result = server.run(OsVariant::kWin98, [&] { client.poll(); });
  const auto* gtc = result.find("GetThreadContext");
  ASSERT_NE(gtc, nullptr);
  EXPECT_TRUE(gtc->catastrophic);
  EXPECT_TRUE(gtc->crash_reproducible_single);  // Listing 1 reproduces
  EXPECT_GT(client.reboots(), 0);
  EXPECT_GT(result.reboots, 0);
}

TEST(CeFileDrop, ResultsTravelThroughTheTargetFilesystem) {
  const auto& world = shared_world();
  sim::Machine target(OsVariant::kWinCE);
  CeFileDropClient client(target, world.registry, 30, 0x8a11157a);
  ASSERT_TRUE(client.execute({"GetTickCount", 0}));
  // The result file is on the target.
  auto& fs = target.fs();
  auto node = fs.resolve(fs.parse("/tmp/ballista_result.txt",
                                  sim::FileSystem::root_path()));
  ASSERT_NE(node, nullptr);
  const std::string text(node->data().begin(), node->data().end());
  EXPECT_NE(text.find("GetTickCount 0"), std::string::npos);
}

TEST(CeFileDrop, CrashLeavesNoResultFile) {
  const auto& world = shared_world();
  sim::Machine target(OsVariant::kWinCE);
  CeFileDropClient client(target, world.registry, 30, 0x8a11157a);
  // Find the Listing 1 case index: run through a few cases of
  // GetThreadContext until the machine dies.
  const core::MuT* mut = world.registry.find("GetThreadContext");
  core::TupleGenerator gen(*mut, 30, 0x8a11157a);
  bool crashed = false;
  for (std::uint64_t i = 0; i < gen.count(); ++i) {
    if (!client.execute({"GetThreadContext", i})) {
      crashed = true;
      break;
    }
  }
  EXPECT_TRUE(crashed);
  EXPECT_TRUE(target.crashed());
}

TEST(CeFileDrop, FullCampaignReproducesCeCatastrophics) {
  const auto result =
      run_ce_file_drop_campaign(shared_world().registry, /*cap=*/40);
  EXPECT_EQ(result.variant, OsVariant::kWinCE);
  const auto list = core::catastrophic_list(result);
  std::set<std::string> names;
  for (const auto& e : list) names.insert(e.name);
  EXPECT_TRUE(names.count("GetThreadContext"));
  EXPECT_TRUE(names.count("VirtualAlloc"));
  EXPECT_TRUE(names.count("fclose"));
  EXPECT_GT(result.reboots, 10);
}

TEST(CeFileDrop, IsSlowerByOrdersOfMagnitude) {
  // §3.2: each CE case costs seconds of target time.
  const auto& world = shared_world();
  sim::Machine target(OsVariant::kWinCE);
  CeFileDropClient client(target, world.registry, 30, 0x8a11157a);
  const auto t0 = target.ticks();
  ASSERT_TRUE(client.execute({"GetTickCount", 0}));
  EXPECT_GT(target.ticks() - t0, 5'000u);
}

}  // namespace
}  // namespace ballista::rpc
