// Tests for single-case execution and CRASH classification.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ballista::core {
namespace {

using sim::OsVariant;

/// Builds a one-MuT world whose implementation is supplied by the test.
struct MiniMut {
  explicit MiniMut(ApiImpl impl, std::vector<const DataType*> params = {}) {
    mut.name = "mini";
    mut.api = ApiKind::kCLib;
    mut.group = FuncGroup::kCString;
    mut.params = std::move(params);
    mut.impl = std::move(impl);
    mut.variant_mask = kMaskEverything;
  }
  MuT mut;
};

const TestValue kBenign{"benign", false, [](ValueCtx&) { return RawArg{1}; }};
const TestValue kExceptional{"exceptional", true,
                             [](ValueCtx&) { return RawArg{0}; }};

TEST(Executor, SuccessWithNoErrorIsPassAndSilentCandidate) {
  sim::Machine m(OsVariant::kLinux);
  Executor ex(m);
  MiniMut mini([](CallContext&) { return ok(0); },
               {});
  MiniMut with_arg([](CallContext&) { return ok(0); }, {});
  // benign tuple: pass, not a silent candidate
  const CaseResult r1 = ex.run_case(mini.mut, {});
  EXPECT_EQ(r1.outcome, Outcome::kPass);
  EXPECT_TRUE(r1.success_no_error);
  EXPECT_FALSE(r1.any_exceptional);
}

TEST(Executor, ExceptionalTupleIsFlagged) {
  sim::Machine m(OsVariant::kLinux);
  Executor ex(m);
  DataType t("t");
  MiniMut mini([](CallContext&) { return ok(0); }, {&t});
  const TestValue* tuple[1] = {&kExceptional};
  const CaseResult r = ex.run_case(mini.mut, tuple);
  EXPECT_TRUE(r.any_exceptional);
  EXPECT_TRUE(r.success_no_error);
}

TEST(Executor, ErrorReportedIsRobustPass) {
  sim::Machine m(OsVariant::kLinux);
  Executor ex(m);
  MiniMut mini([](CallContext& c) { return c.posix_fail(EINVAL); }, {});
  const CaseResult r = ex.run_case(mini.mut, {});
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_FALSE(r.success_no_error);
}

TEST(Executor, SimFaultClassifiesAsAbort) {
  sim::Machine m(OsVariant::kLinux);
  Executor ex(m);
  MiniMut mini(
      [](CallContext& c) -> CallOutcome {
        c.proc().mem().read_u8(0, sim::Access::kUser);
        return ok(0);
      },
      {});
  const CaseResult r = ex.run_case(mini.mut, {});
  EXPECT_EQ(r.outcome, Outcome::kAbort);
  EXPECT_EQ(r.fault, sim::FaultType::kAccessViolation);
  EXPECT_FALSE(m.crashed());
}

TEST(Executor, HangClassifiesAsRestart) {
  sim::Machine m(OsVariant::kWinNT4);
  Executor ex(m);
  MiniMut mini(
      [](CallContext& c) -> CallOutcome { c.proc().hang("forever"); },
      {});
  const CaseResult r = ex.run_case(mini.mut, {});
  EXPECT_EQ(r.outcome, Outcome::kRestart);
}

TEST(Executor, PanicClassifiesAsCatastrophicAndCrashesMachine) {
  sim::Machine m(OsVariant::kWin98);
  Executor ex(m);
  MiniMut mini(
      [](CallContext& c) -> CallOutcome {
        c.machine().panic(sim::PanicKind::kInduced);
      },
      {});
  const CaseResult r = ex.run_case(mini.mut, {});
  EXPECT_EQ(r.outcome, Outcome::kCatastrophic);
  EXPECT_TRUE(m.crashed());
}

TEST(Executor, WrongErrorIsHinderingCandidate) {
  sim::Machine m(OsVariant::kLinux);
  Executor ex(m);
  MiniMut mini([](CallContext&) { return wrong_error(static_cast<std::uint64_t>(-1)); }, {});
  const CaseResult r = ex.run_case(mini.mut, {});
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_TRUE(r.wrong_error);
}

TEST(Executor, SilentSuccessCountsAsSuccessNoError) {
  sim::Machine m(OsVariant::kWin95);
  Executor ex(m);
  MiniMut mini([](CallContext&) { return silent_success(1); }, {});
  const CaseResult r = ex.run_case(mini.mut, {});
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_TRUE(r.success_no_error);
}

TEST(Executor, FilesystemFixtureIsResetBetweenCases) {
  sim::Machine m(OsVariant::kLinux);
  Executor ex(m);
  MiniMut dirty(
      [](CallContext& c) -> CallOutcome {
        auto& fs = c.machine().fs();
        fs.remove_file(fs.parse("/tmp/fixture.dat", c.proc().cwd()));
        return ok(0);
      },
      {});
  MiniMut check(
      [](CallContext& c) -> CallOutcome {
        auto& fs = c.machine().fs();
        const bool there =
            fs.resolve(fs.parse("/tmp/fixture.dat", c.proc().cwd())) != nullptr;
        return there ? ok(1) : ok(0);
      },
      {});
  (void)ex.run_case(dirty.mut, {});
  const CaseResult r = ex.run_case(check.mut, {});
  EXPECT_TRUE(r.success_no_error);
  // The fixture file was restored for the second case; verify via a third
  // direct look.
  EXPECT_NE(m.fs().resolve(m.fs().parse("/tmp/fixture.dat",
                                        sim::FileSystem::root_path())),
            nullptr);
}

TEST(Executor, ErrorStateSentinelsAreClearedPerCase) {
  sim::Machine m(OsVariant::kWinNT4);
  Executor ex(m);
  MiniMut set_err([](CallContext& c) { return c.win_fail(87); }, {});
  MiniMut read_err(
      [](CallContext& c) -> CallOutcome {
        // A fresh task must start with no stale error code.
        return c.proc().last_error() == 0 ? ok(0) : wrong_error(0);
      },
      {});
  (void)ex.run_case(set_err.mut, {});
  const CaseResult r = ex.run_case(read_err.mut, {});
  EXPECT_FALSE(r.wrong_error);
}

TEST(Executor, ValueFactoriesRunInsideTheFreshTask) {
  sim::Machine m(OsVariant::kLinux);
  Executor ex(m);
  DataType t("alloc_type");
  const TestValue allocating{"allocating", false, [](ValueCtx& c) {
                               return c.proc.mem().alloc_cstr("made-in-task");
                             }};
  MiniMut mini(
      [](CallContext& c) -> CallOutcome {
        const std::string s =
            c.proc().mem().read_cstr(c.arg_addr(0), 64, sim::Access::kKernel);
        return s == "made-in-task" ? ok(1) : wrong_error(0);
      },
      {&t});
  const TestValue* tuple[1] = {&allocating};
  const CaseResult r = ex.run_case(mini.mut, tuple);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_FALSE(r.wrong_error);
}

}  // namespace
}  // namespace ballista::core
