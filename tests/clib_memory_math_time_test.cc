// Tests for the C memory, C math and C time families.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ballista::clib {
namespace {

using ballista::testing::run_named_case;
using ballista::testing::shared_world;
using core::Outcome;
using sim::OsVariant;

// --- C memory ---------------------------------------------------------------

TEST(Memcpy, GuardPagesBoundOverruns) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "memcpy",
                           {"buf_64", "cbuf_64", "size_16"}, &m)
                .outcome,
            Outcome::kPass);
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "memcpy",
                           {"buf_64", "cbuf_64", "size_64k"}, &m)
                .outcome,
            Outcome::kAbort);
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "memcpy",
                           {"buf_null", "cbuf_64", "size_1"}, &m)
                .outcome,
            Outcome::kAbort);
}

TEST(Memset, SizeZeroIsANoOpEvenOnBadPointers) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWinNT4);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "memset",
                           {"buf_null", "ch_a", "size_0"}, &m)
                .outcome,
            Outcome::kPass);
}

TEST(FreeBadPointer, PersonalitiesDiverge) {
  const auto& w = shared_world();
  // glibc chases chunk metadata: Abort.
  sim::Machine linux_box(OsVariant::kLinux);
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "free", {"heap_garbage"},
                           &linux_box)
                .outcome,
            Outcome::kAbort);
  // NT CRT reads the header: Abort.
  sim::Machine nt(OsVariant::kWinNT4);
  EXPECT_EQ(
      run_named_case(w, OsVariant::kWinNT4, "free", {"heap_garbage"}, &nt)
          .outcome,
      Outcome::kAbort);
  // 9x CRT validates against its table: Silent no-op.
  sim::Machine w98(OsVariant::kWin98);
  const auto r =
      run_named_case(w, OsVariant::kWin98, "free", {"heap_garbage"}, &w98);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_TRUE(r.success_no_error);
}

TEST(FreeNull, LegalEverywhere) {
  const auto& w = shared_world();
  for (OsVariant v : {OsVariant::kLinux, OsVariant::kWinNT4,
                      OsVariant::kWin95}) {
    sim::Machine m(v);
    EXPECT_EQ(run_named_case(w, v, "free", {"heap_null"}, &m).outcome,
              Outcome::kPass);
  }
}

TEST(FreeValid, ReleasesTheChunk) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  EXPECT_EQ(
      run_named_case(w, OsVariant::kLinux, "free", {"heap_valid_64"}, &m)
          .outcome,
      Outcome::kPass);
}

TEST(Malloc, HugeRequestsReportEnomem) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  const auto r =
      run_named_case(w, OsVariant::kLinux, "malloc", {"size_halfmax"}, &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_FALSE(r.success_no_error);  // ENOMEM reported
}

TEST(Calloc, ThirtyTwoBitMultiplicationWraps) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  // 64K * 64K wraps to 0 in 32 bits: the classic silent calloc overflow.
  const auto r = run_named_case(w, OsVariant::kLinux, "calloc",
                                {"size_64k", "size_64k"}, &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_TRUE(r.success_no_error);
  EXPECT_TRUE(r.any_exceptional);  // direct Silent candidate
}

TEST(Realloc, NullActsAsMallocAndGarbageReports) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kWin98);
  EXPECT_EQ(run_named_case(w, OsVariant::kWin98, "realloc",
                           {"heap_null", "size_16"}, &m)
                .outcome,
            Outcome::kPass);
  const auto r = run_named_case(w, OsVariant::kWin98, "realloc",
                                {"heap_garbage", "size_16"}, &m);
  EXPECT_FALSE(r.success_no_error);
}

// --- C math ------------------------------------------------------------------

class MathDomain : public ::testing::TestWithParam<OsVariant> {};

TEST_P(MathDomain, DomainErrorsReportEdom) {
  const auto& w = shared_world();
  sim::Machine m(GetParam());
  const auto r =
      run_named_case(w, GetParam(), "sqrt", {"d_neg1"}, &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_FALSE(r.success_no_error);  // EDOM reported
  const auto r2 = run_named_case(w, GetParam(), "acos", {"d_1e10"}, &m);
  EXPECT_FALSE(r2.success_no_error);
  const auto r3 = run_named_case(w, GetParam(), "log", {"d_0"}, &m);
  EXPECT_FALSE(r3.success_no_error);
}

TEST_P(MathDomain, NanPropagatesSilently) {
  const auto& w = shared_world();
  sim::Machine m(GetParam());
  const auto r = run_named_case(w, GetParam(), "sin", {"d_nan"}, &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_TRUE(r.success_no_error);
  EXPECT_TRUE(r.any_exceptional);  // the C-math Silent residue
}

TEST_P(MathDomain, OverflowReportsErange) {
  const auto& w = shared_world();
  sim::Machine m(GetParam());
  const auto r = run_named_case(w, GetParam(), "exp", {"d_1e10"}, &m);
  EXPECT_FALSE(r.success_no_error);  // ERANGE
}

INSTANTIATE_TEST_SUITE_P(Variants, MathDomain,
                         ::testing::Values(OsVariant::kLinux,
                                           OsVariant::kWinNT4,
                                           OsVariant::kWin95));

TEST(Modf, StoresIntegralPartThroughPointer) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  EXPECT_EQ(
      run_named_case(w, OsVariant::kLinux, "modf", {"d_pi", "buf_64"}, &m)
          .outcome,
      Outcome::kPass);
  EXPECT_EQ(
      run_named_case(w, OsVariant::kLinux, "modf", {"d_pi", "buf_null"}, &m)
          .outcome,
      Outcome::kAbort);
}

// --- C time -------------------------------------------------------------------

TEST(TimeFns, NotSupportedOnCe) {
  const auto& w = shared_world();
  for (const char* name : {"time", "ctime", "mktime", "strftime"}) {
    EXPECT_FALSE(
        w.registry.find(name)->supported_on(OsVariant::kWinCE))
        << name;
  }
}

TEST(TimeFns, TimeNullIsLegal) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  const auto r =
      run_named_case(w, OsVariant::kLinux, "time", {"time_null_ok"}, &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);
}

TEST(TimeFns, TimeBadPointerSplitsByArchitecture) {
  const auto& w = shared_world();
  // Linux: time(2) is a syscall, kernel probes -> EFAULT error.
  sim::Machine linux_box(OsVariant::kLinux);
  const auto lr = run_named_case(w, OsVariant::kLinux, "time",
                                 {"time_dangling"}, &linux_box);
  EXPECT_EQ(lr.outcome, Outcome::kPass);
  EXPECT_FALSE(lr.success_no_error);
  // Windows CRT converts in user mode -> Abort.
  sim::Machine nt(OsVariant::kWinNT4);
  EXPECT_EQ(run_named_case(w, OsVariant::kWinNT4, "time", {"time_dangling"},
                           &nt)
                .outcome,
            Outcome::kAbort);
}

TEST(Asctime, GlibcIndexesTablesRawMsvcValidates) {
  const auto& w = shared_world();
  sim::Machine linux_box(OsVariant::kLinux);
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "asctime",
                           {"tm_out_of_range"}, &linux_box)
                .outcome,
            Outcome::kAbort);
  sim::Machine nt(OsVariant::kWinNT4);
  const auto r = run_named_case(w, OsVariant::kWinNT4, "asctime",
                                {"tm_out_of_range"}, &nt);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_FALSE(r.success_no_error);  // EINVAL reported
}

TEST(Asctime, ValidTmFormatsEverywhere) {
  const auto& w = shared_world();
  for (OsVariant v : {OsVariant::kLinux, OsVariant::kWin98}) {
    sim::Machine m(v);
    const auto r = run_named_case(w, v, "asctime", {"tm_valid"}, &m);
    EXPECT_EQ(r.outcome, Outcome::kPass);
    EXPECT_TRUE(r.success_no_error);
  }
}

TEST(Mktime, OutOfRangeReportsMinusOne) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  const auto r = run_named_case(w, OsVariant::kLinux, "mktime",
                                {"tm_out_of_range"}, &m);
  EXPECT_EQ(r.outcome, Outcome::kPass);
  EXPECT_FALSE(r.success_no_error);
}

TEST(Gmtime, BadTimePointerAbortsEverywhere) {
  const auto& w = shared_world();
  for (OsVariant v : {OsVariant::kLinux, OsVariant::kWinNT4}) {
    sim::Machine m(v);
    EXPECT_EQ(run_named_case(w, v, "gmtime", {"time_null"}, &m).outcome,
              Outcome::kAbort);
  }
}

TEST(Strftime, FormatsIntoBuffer) {
  const auto& w = shared_world();
  sim::Machine m(OsVariant::kLinux);
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "strftime",
                           {"buf_page", "size_255", "str_hello", "tm_valid"},
                           &m)
                .outcome,
            Outcome::kPass);
  EXPECT_EQ(run_named_case(w, OsVariant::kLinux, "strftime",
                           {"buf_null", "size_255", "str_hello", "tm_valid"},
                           &m)
                .outcome,
            Outcome::kAbort);
}

}  // namespace
}  // namespace ballista::clib
