file(REMOVE_RECURSE
  "CMakeFiles/os_comparison.dir/os_comparison.cpp.o"
  "CMakeFiles/os_comparison.dir/os_comparison.cpp.o.d"
  "os_comparison"
  "os_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
