# Empty dependencies file for os_comparison.
# This may be replaced when dependencies are built.
