# Empty dependencies file for harden_wrappers.
# This may be replaced when dependencies are built.
