file(REMOVE_RECURSE
  "CMakeFiles/harden_wrappers.dir/harden_wrappers.cpp.o"
  "CMakeFiles/harden_wrappers.dir/harden_wrappers.cpp.o.d"
  "harden_wrappers"
  "harden_wrappers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harden_wrappers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
