# Empty dependencies file for crash_win98.
# This may be replaced when dependencies are built.
