file(REMOVE_RECURSE
  "CMakeFiles/crash_win98.dir/crash_win98.cpp.o"
  "CMakeFiles/crash_win98.dir/crash_win98.cpp.o.d"
  "crash_win98"
  "crash_win98.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_win98.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
