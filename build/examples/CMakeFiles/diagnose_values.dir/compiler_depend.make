# Empty compiler generated dependencies file for diagnose_values.
# This may be replaced when dependencies are built.
