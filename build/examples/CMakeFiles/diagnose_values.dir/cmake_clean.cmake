file(REMOVE_RECURSE
  "CMakeFiles/diagnose_values.dir/diagnose_values.cpp.o"
  "CMakeFiles/diagnose_values.dir/diagnose_values.cpp.o.d"
  "diagnose_values"
  "diagnose_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
