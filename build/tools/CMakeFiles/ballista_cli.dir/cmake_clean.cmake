file(REMOVE_RECURSE
  "CMakeFiles/ballista_cli.dir/ballista_cli.cc.o"
  "CMakeFiles/ballista_cli.dir/ballista_cli.cc.o.d"
  "ballista_cli"
  "ballista_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ballista_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
