# Empty dependencies file for ballista_cli.
# This may be replaced when dependencies are built.
