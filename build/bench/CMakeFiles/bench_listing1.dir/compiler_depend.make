# Empty compiler generated dependencies file for bench_listing1.
# This may be replaced when dependencies are built.
