file(REMOVE_RECURSE
  "CMakeFiles/bench_listing1.dir/bench_listing1.cc.o"
  "CMakeFiles/bench_listing1.dir/bench_listing1.cc.o.d"
  "bench_listing1"
  "bench_listing1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_listing1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
