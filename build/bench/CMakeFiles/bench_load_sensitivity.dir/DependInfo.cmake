
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_load_sensitivity.cc" "bench/CMakeFiles/bench_load_sensitivity.dir/bench_load_sensitivity.cc.o" "gcc" "bench/CMakeFiles/bench_load_sensitivity.dir/bench_load_sensitivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/ballista_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/win32/CMakeFiles/ballista_win32.dir/DependInfo.cmake"
  "/root/repo/build/src/posix/CMakeFiles/ballista_posix.dir/DependInfo.cmake"
  "/root/repo/build/src/clib/CMakeFiles/ballista_clib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ballista_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ballista_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
