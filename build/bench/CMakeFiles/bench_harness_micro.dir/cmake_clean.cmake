file(REMOVE_RECURSE
  "CMakeFiles/bench_harness_micro.dir/bench_harness_micro.cc.o"
  "CMakeFiles/bench_harness_micro.dir/bench_harness_micro.cc.o.d"
  "bench_harness_micro"
  "bench_harness_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_harness_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
