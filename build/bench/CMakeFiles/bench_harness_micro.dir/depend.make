# Empty dependencies file for bench_harness_micro.
# This may be replaced when dependencies are built.
