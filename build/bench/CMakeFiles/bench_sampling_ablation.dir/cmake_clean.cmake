file(REMOVE_RECURSE
  "CMakeFiles/bench_sampling_ablation.dir/bench_sampling_ablation.cc.o"
  "CMakeFiles/bench_sampling_ablation.dir/bench_sampling_ablation.cc.o.d"
  "bench_sampling_ablation"
  "bench_sampling_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sampling_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
