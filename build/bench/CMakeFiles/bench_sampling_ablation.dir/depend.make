# Empty dependencies file for bench_sampling_ablation.
# This may be replaced when dependencies are built.
