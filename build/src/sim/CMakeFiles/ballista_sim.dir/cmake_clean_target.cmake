file(REMOVE_RECURSE
  "libballista_sim.a"
)
