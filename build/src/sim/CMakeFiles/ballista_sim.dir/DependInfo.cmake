
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/addrspace.cc" "src/sim/CMakeFiles/ballista_sim.dir/addrspace.cc.o" "gcc" "src/sim/CMakeFiles/ballista_sim.dir/addrspace.cc.o.d"
  "/root/repo/src/sim/fault.cc" "src/sim/CMakeFiles/ballista_sim.dir/fault.cc.o" "gcc" "src/sim/CMakeFiles/ballista_sim.dir/fault.cc.o.d"
  "/root/repo/src/sim/filesystem.cc" "src/sim/CMakeFiles/ballista_sim.dir/filesystem.cc.o" "gcc" "src/sim/CMakeFiles/ballista_sim.dir/filesystem.cc.o.d"
  "/root/repo/src/sim/kobject.cc" "src/sim/CMakeFiles/ballista_sim.dir/kobject.cc.o" "gcc" "src/sim/CMakeFiles/ballista_sim.dir/kobject.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/ballista_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/ballista_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/personality.cc" "src/sim/CMakeFiles/ballista_sim.dir/personality.cc.o" "gcc" "src/sim/CMakeFiles/ballista_sim.dir/personality.cc.o.d"
  "/root/repo/src/sim/process.cc" "src/sim/CMakeFiles/ballista_sim.dir/process.cc.o" "gcc" "src/sim/CMakeFiles/ballista_sim.dir/process.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
