# Empty compiler generated dependencies file for ballista_sim.
# This may be replaced when dependencies are built.
