file(REMOVE_RECURSE
  "CMakeFiles/ballista_sim.dir/addrspace.cc.o"
  "CMakeFiles/ballista_sim.dir/addrspace.cc.o.d"
  "CMakeFiles/ballista_sim.dir/fault.cc.o"
  "CMakeFiles/ballista_sim.dir/fault.cc.o.d"
  "CMakeFiles/ballista_sim.dir/filesystem.cc.o"
  "CMakeFiles/ballista_sim.dir/filesystem.cc.o.d"
  "CMakeFiles/ballista_sim.dir/kobject.cc.o"
  "CMakeFiles/ballista_sim.dir/kobject.cc.o.d"
  "CMakeFiles/ballista_sim.dir/machine.cc.o"
  "CMakeFiles/ballista_sim.dir/machine.cc.o.d"
  "CMakeFiles/ballista_sim.dir/personality.cc.o"
  "CMakeFiles/ballista_sim.dir/personality.cc.o.d"
  "CMakeFiles/ballista_sim.dir/process.cc.o"
  "CMakeFiles/ballista_sim.dir/process.cc.o.d"
  "libballista_sim.a"
  "libballista_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ballista_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
