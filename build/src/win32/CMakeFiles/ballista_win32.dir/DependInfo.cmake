
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/win32/env_calls.cc" "src/win32/CMakeFiles/ballista_win32.dir/env_calls.cc.o" "gcc" "src/win32/CMakeFiles/ballista_win32.dir/env_calls.cc.o.d"
  "/root/repo/src/win32/file_calls.cc" "src/win32/CMakeFiles/ballista_win32.dir/file_calls.cc.o" "gcc" "src/win32/CMakeFiles/ballista_win32.dir/file_calls.cc.o.d"
  "/root/repo/src/win32/io_calls.cc" "src/win32/CMakeFiles/ballista_win32.dir/io_calls.cc.o" "gcc" "src/win32/CMakeFiles/ballista_win32.dir/io_calls.cc.o.d"
  "/root/repo/src/win32/memory_calls.cc" "src/win32/CMakeFiles/ballista_win32.dir/memory_calls.cc.o" "gcc" "src/win32/CMakeFiles/ballista_win32.dir/memory_calls.cc.o.d"
  "/root/repo/src/win32/proc_calls.cc" "src/win32/CMakeFiles/ballista_win32.dir/proc_calls.cc.o" "gcc" "src/win32/CMakeFiles/ballista_win32.dir/proc_calls.cc.o.d"
  "/root/repo/src/win32/win32_common.cc" "src/win32/CMakeFiles/ballista_win32.dir/win32_common.cc.o" "gcc" "src/win32/CMakeFiles/ballista_win32.dir/win32_common.cc.o.d"
  "/root/repo/src/win32/win32_types.cc" "src/win32/CMakeFiles/ballista_win32.dir/win32_types.cc.o" "gcc" "src/win32/CMakeFiles/ballista_win32.dir/win32_types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ballista_core.dir/DependInfo.cmake"
  "/root/repo/build/src/clib/CMakeFiles/ballista_clib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ballista_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
