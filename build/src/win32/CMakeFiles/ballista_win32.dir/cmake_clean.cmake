file(REMOVE_RECURSE
  "CMakeFiles/ballista_win32.dir/env_calls.cc.o"
  "CMakeFiles/ballista_win32.dir/env_calls.cc.o.d"
  "CMakeFiles/ballista_win32.dir/file_calls.cc.o"
  "CMakeFiles/ballista_win32.dir/file_calls.cc.o.d"
  "CMakeFiles/ballista_win32.dir/io_calls.cc.o"
  "CMakeFiles/ballista_win32.dir/io_calls.cc.o.d"
  "CMakeFiles/ballista_win32.dir/memory_calls.cc.o"
  "CMakeFiles/ballista_win32.dir/memory_calls.cc.o.d"
  "CMakeFiles/ballista_win32.dir/proc_calls.cc.o"
  "CMakeFiles/ballista_win32.dir/proc_calls.cc.o.d"
  "CMakeFiles/ballista_win32.dir/win32_common.cc.o"
  "CMakeFiles/ballista_win32.dir/win32_common.cc.o.d"
  "CMakeFiles/ballista_win32.dir/win32_types.cc.o"
  "CMakeFiles/ballista_win32.dir/win32_types.cc.o.d"
  "libballista_win32.a"
  "libballista_win32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ballista_win32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
