file(REMOVE_RECURSE
  "libballista_win32.a"
)
