# Empty dependencies file for ballista_win32.
# This may be replaced when dependencies are built.
