file(REMOVE_RECURSE
  "CMakeFiles/ballista_core.dir/analysis.cc.o"
  "CMakeFiles/ballista_core.dir/analysis.cc.o.d"
  "CMakeFiles/ballista_core.dir/campaign.cc.o"
  "CMakeFiles/ballista_core.dir/campaign.cc.o.d"
  "CMakeFiles/ballista_core.dir/execctx.cc.o"
  "CMakeFiles/ballista_core.dir/execctx.cc.o.d"
  "CMakeFiles/ballista_core.dir/executor.cc.o"
  "CMakeFiles/ballista_core.dir/executor.cc.o.d"
  "CMakeFiles/ballista_core.dir/generator.cc.o"
  "CMakeFiles/ballista_core.dir/generator.cc.o.d"
  "CMakeFiles/ballista_core.dir/report.cc.o"
  "CMakeFiles/ballista_core.dir/report.cc.o.d"
  "CMakeFiles/ballista_core.dir/typelib.cc.o"
  "CMakeFiles/ballista_core.dir/typelib.cc.o.d"
  "CMakeFiles/ballista_core.dir/voting.cc.o"
  "CMakeFiles/ballista_core.dir/voting.cc.o.d"
  "libballista_core.a"
  "libballista_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ballista_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
