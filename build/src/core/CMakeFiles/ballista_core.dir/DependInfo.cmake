
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/ballista_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/ballista_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/campaign.cc" "src/core/CMakeFiles/ballista_core.dir/campaign.cc.o" "gcc" "src/core/CMakeFiles/ballista_core.dir/campaign.cc.o.d"
  "/root/repo/src/core/execctx.cc" "src/core/CMakeFiles/ballista_core.dir/execctx.cc.o" "gcc" "src/core/CMakeFiles/ballista_core.dir/execctx.cc.o.d"
  "/root/repo/src/core/executor.cc" "src/core/CMakeFiles/ballista_core.dir/executor.cc.o" "gcc" "src/core/CMakeFiles/ballista_core.dir/executor.cc.o.d"
  "/root/repo/src/core/generator.cc" "src/core/CMakeFiles/ballista_core.dir/generator.cc.o" "gcc" "src/core/CMakeFiles/ballista_core.dir/generator.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/ballista_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/ballista_core.dir/report.cc.o.d"
  "/root/repo/src/core/typelib.cc" "src/core/CMakeFiles/ballista_core.dir/typelib.cc.o" "gcc" "src/core/CMakeFiles/ballista_core.dir/typelib.cc.o.d"
  "/root/repo/src/core/voting.cc" "src/core/CMakeFiles/ballista_core.dir/voting.cc.o" "gcc" "src/core/CMakeFiles/ballista_core.dir/voting.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ballista_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
