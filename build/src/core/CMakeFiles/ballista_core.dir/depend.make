# Empty dependencies file for ballista_core.
# This may be replaced when dependencies are built.
