file(REMOVE_RECURSE
  "libballista_core.a"
)
