# Empty dependencies file for ballista_clib.
# This may be replaced when dependencies are built.
