file(REMOVE_RECURSE
  "libballista_clib.a"
)
