file(REMOVE_RECURSE
  "CMakeFiles/ballista_clib.dir/char_fns.cc.o"
  "CMakeFiles/ballista_clib.dir/char_fns.cc.o.d"
  "CMakeFiles/ballista_clib.dir/clib_types.cc.o"
  "CMakeFiles/ballista_clib.dir/clib_types.cc.o.d"
  "CMakeFiles/ballista_clib.dir/crt.cc.o"
  "CMakeFiles/ballista_clib.dir/crt.cc.o.d"
  "CMakeFiles/ballista_clib.dir/math_fns.cc.o"
  "CMakeFiles/ballista_clib.dir/math_fns.cc.o.d"
  "CMakeFiles/ballista_clib.dir/memory_fns.cc.o"
  "CMakeFiles/ballista_clib.dir/memory_fns.cc.o.d"
  "CMakeFiles/ballista_clib.dir/stdio_file_fns.cc.o"
  "CMakeFiles/ballista_clib.dir/stdio_file_fns.cc.o.d"
  "CMakeFiles/ballista_clib.dir/stream_fns.cc.o"
  "CMakeFiles/ballista_clib.dir/stream_fns.cc.o.d"
  "CMakeFiles/ballista_clib.dir/string_fns.cc.o"
  "CMakeFiles/ballista_clib.dir/string_fns.cc.o.d"
  "CMakeFiles/ballista_clib.dir/time_fns.cc.o"
  "CMakeFiles/ballista_clib.dir/time_fns.cc.o.d"
  "libballista_clib.a"
  "libballista_clib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ballista_clib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
