
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clib/char_fns.cc" "src/clib/CMakeFiles/ballista_clib.dir/char_fns.cc.o" "gcc" "src/clib/CMakeFiles/ballista_clib.dir/char_fns.cc.o.d"
  "/root/repo/src/clib/clib_types.cc" "src/clib/CMakeFiles/ballista_clib.dir/clib_types.cc.o" "gcc" "src/clib/CMakeFiles/ballista_clib.dir/clib_types.cc.o.d"
  "/root/repo/src/clib/crt.cc" "src/clib/CMakeFiles/ballista_clib.dir/crt.cc.o" "gcc" "src/clib/CMakeFiles/ballista_clib.dir/crt.cc.o.d"
  "/root/repo/src/clib/math_fns.cc" "src/clib/CMakeFiles/ballista_clib.dir/math_fns.cc.o" "gcc" "src/clib/CMakeFiles/ballista_clib.dir/math_fns.cc.o.d"
  "/root/repo/src/clib/memory_fns.cc" "src/clib/CMakeFiles/ballista_clib.dir/memory_fns.cc.o" "gcc" "src/clib/CMakeFiles/ballista_clib.dir/memory_fns.cc.o.d"
  "/root/repo/src/clib/stdio_file_fns.cc" "src/clib/CMakeFiles/ballista_clib.dir/stdio_file_fns.cc.o" "gcc" "src/clib/CMakeFiles/ballista_clib.dir/stdio_file_fns.cc.o.d"
  "/root/repo/src/clib/stream_fns.cc" "src/clib/CMakeFiles/ballista_clib.dir/stream_fns.cc.o" "gcc" "src/clib/CMakeFiles/ballista_clib.dir/stream_fns.cc.o.d"
  "/root/repo/src/clib/string_fns.cc" "src/clib/CMakeFiles/ballista_clib.dir/string_fns.cc.o" "gcc" "src/clib/CMakeFiles/ballista_clib.dir/string_fns.cc.o.d"
  "/root/repo/src/clib/time_fns.cc" "src/clib/CMakeFiles/ballista_clib.dir/time_fns.cc.o" "gcc" "src/clib/CMakeFiles/ballista_clib.dir/time_fns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ballista_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ballista_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
