file(REMOVE_RECURSE
  "CMakeFiles/ballista_harness.dir/stress.cc.o"
  "CMakeFiles/ballista_harness.dir/stress.cc.o.d"
  "CMakeFiles/ballista_harness.dir/world.cc.o"
  "CMakeFiles/ballista_harness.dir/world.cc.o.d"
  "libballista_harness.a"
  "libballista_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ballista_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
