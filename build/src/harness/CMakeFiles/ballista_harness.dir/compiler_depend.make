# Empty compiler generated dependencies file for ballista_harness.
# This may be replaced when dependencies are built.
