file(REMOVE_RECURSE
  "libballista_harness.a"
)
