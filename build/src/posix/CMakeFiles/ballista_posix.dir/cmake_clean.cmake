file(REMOVE_RECURSE
  "CMakeFiles/ballista_posix.dir/env_calls.cc.o"
  "CMakeFiles/ballista_posix.dir/env_calls.cc.o.d"
  "CMakeFiles/ballista_posix.dir/fs_calls.cc.o"
  "CMakeFiles/ballista_posix.dir/fs_calls.cc.o.d"
  "CMakeFiles/ballista_posix.dir/io_calls.cc.o"
  "CMakeFiles/ballista_posix.dir/io_calls.cc.o.d"
  "CMakeFiles/ballista_posix.dir/mem_calls.cc.o"
  "CMakeFiles/ballista_posix.dir/mem_calls.cc.o.d"
  "CMakeFiles/ballista_posix.dir/posix_common.cc.o"
  "CMakeFiles/ballista_posix.dir/posix_common.cc.o.d"
  "CMakeFiles/ballista_posix.dir/posix_types.cc.o"
  "CMakeFiles/ballista_posix.dir/posix_types.cc.o.d"
  "CMakeFiles/ballista_posix.dir/proc_calls.cc.o"
  "CMakeFiles/ballista_posix.dir/proc_calls.cc.o.d"
  "libballista_posix.a"
  "libballista_posix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ballista_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
