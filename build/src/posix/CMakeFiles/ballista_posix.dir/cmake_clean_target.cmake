file(REMOVE_RECURSE
  "libballista_posix.a"
)
