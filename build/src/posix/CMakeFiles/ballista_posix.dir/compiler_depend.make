# Empty compiler generated dependencies file for ballista_posix.
# This may be replaced when dependencies are built.
