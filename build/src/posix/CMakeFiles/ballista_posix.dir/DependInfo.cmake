
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/posix/env_calls.cc" "src/posix/CMakeFiles/ballista_posix.dir/env_calls.cc.o" "gcc" "src/posix/CMakeFiles/ballista_posix.dir/env_calls.cc.o.d"
  "/root/repo/src/posix/fs_calls.cc" "src/posix/CMakeFiles/ballista_posix.dir/fs_calls.cc.o" "gcc" "src/posix/CMakeFiles/ballista_posix.dir/fs_calls.cc.o.d"
  "/root/repo/src/posix/io_calls.cc" "src/posix/CMakeFiles/ballista_posix.dir/io_calls.cc.o" "gcc" "src/posix/CMakeFiles/ballista_posix.dir/io_calls.cc.o.d"
  "/root/repo/src/posix/mem_calls.cc" "src/posix/CMakeFiles/ballista_posix.dir/mem_calls.cc.o" "gcc" "src/posix/CMakeFiles/ballista_posix.dir/mem_calls.cc.o.d"
  "/root/repo/src/posix/posix_common.cc" "src/posix/CMakeFiles/ballista_posix.dir/posix_common.cc.o" "gcc" "src/posix/CMakeFiles/ballista_posix.dir/posix_common.cc.o.d"
  "/root/repo/src/posix/posix_types.cc" "src/posix/CMakeFiles/ballista_posix.dir/posix_types.cc.o" "gcc" "src/posix/CMakeFiles/ballista_posix.dir/posix_types.cc.o.d"
  "/root/repo/src/posix/proc_calls.cc" "src/posix/CMakeFiles/ballista_posix.dir/proc_calls.cc.o" "gcc" "src/posix/CMakeFiles/ballista_posix.dir/proc_calls.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ballista_core.dir/DependInfo.cmake"
  "/root/repo/build/src/clib/CMakeFiles/ballista_clib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ballista_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
