file(REMOVE_RECURSE
  "CMakeFiles/ballista_rpc.dir/channel.cc.o"
  "CMakeFiles/ballista_rpc.dir/channel.cc.o.d"
  "CMakeFiles/ballista_rpc.dir/harness_rpc.cc.o"
  "CMakeFiles/ballista_rpc.dir/harness_rpc.cc.o.d"
  "CMakeFiles/ballista_rpc.dir/protocol.cc.o"
  "CMakeFiles/ballista_rpc.dir/protocol.cc.o.d"
  "libballista_rpc.a"
  "libballista_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ballista_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
