file(REMOVE_RECURSE
  "libballista_rpc.a"
)
