# Empty dependencies file for ballista_rpc.
# This may be replaced when dependencies are built.
