# Empty compiler generated dependencies file for ballista_tests.
# This may be replaced when dependencies are built.
