
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/addrspace_test.cc" "tests/CMakeFiles/ballista_tests.dir/addrspace_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/addrspace_test.cc.o.d"
  "/root/repo/tests/analysis_test.cc" "tests/CMakeFiles/ballista_tests.dir/analysis_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/analysis_test.cc.o.d"
  "/root/repo/tests/campaign_test.cc" "tests/CMakeFiles/ballista_tests.dir/campaign_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/campaign_test.cc.o.d"
  "/root/repo/tests/clib_char_string_test.cc" "tests/CMakeFiles/ballista_tests.dir/clib_char_string_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/clib_char_string_test.cc.o.d"
  "/root/repo/tests/clib_detail_test.cc" "tests/CMakeFiles/ballista_tests.dir/clib_detail_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/clib_detail_test.cc.o.d"
  "/root/repo/tests/clib_memory_math_time_test.cc" "tests/CMakeFiles/ballista_tests.dir/clib_memory_math_time_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/clib_memory_math_time_test.cc.o.d"
  "/root/repo/tests/clib_stdio_test.cc" "tests/CMakeFiles/ballista_tests.dir/clib_stdio_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/clib_stdio_test.cc.o.d"
  "/root/repo/tests/execctx_test.cc" "tests/CMakeFiles/ballista_tests.dir/execctx_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/execctx_test.cc.o.d"
  "/root/repo/tests/executor_test.cc" "tests/CMakeFiles/ballista_tests.dir/executor_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/executor_test.cc.o.d"
  "/root/repo/tests/filesystem_test.cc" "tests/CMakeFiles/ballista_tests.dir/filesystem_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/filesystem_test.cc.o.d"
  "/root/repo/tests/generator_test.cc" "tests/CMakeFiles/ballista_tests.dir/generator_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/generator_test.cc.o.d"
  "/root/repo/tests/hindering_test.cc" "tests/CMakeFiles/ballista_tests.dir/hindering_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/hindering_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/ballista_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/kobject_test.cc" "tests/CMakeFiles/ballista_tests.dir/kobject_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/kobject_test.cc.o.d"
  "/root/repo/tests/machine_test.cc" "tests/CMakeFiles/ballista_tests.dir/machine_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/machine_test.cc.o.d"
  "/root/repo/tests/posix_detail_test.cc" "tests/CMakeFiles/ballista_tests.dir/posix_detail_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/posix_detail_test.cc.o.d"
  "/root/repo/tests/posix_test.cc" "tests/CMakeFiles/ballista_tests.dir/posix_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/posix_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/ballista_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/protocol_fuzz_test.cc" "tests/CMakeFiles/ballista_tests.dir/protocol_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/protocol_fuzz_test.cc.o.d"
  "/root/repo/tests/report_test.cc" "tests/CMakeFiles/ballista_tests.dir/report_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/report_test.cc.o.d"
  "/root/repo/tests/rpc_test.cc" "tests/CMakeFiles/ballista_tests.dir/rpc_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/rpc_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/ballista_tests.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/stress_test.cc.o.d"
  "/root/repo/tests/voting_test.cc" "tests/CMakeFiles/ballista_tests.dir/voting_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/voting_test.cc.o.d"
  "/root/repo/tests/win32_env_file_test.cc" "tests/CMakeFiles/ballista_tests.dir/win32_env_file_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/win32_env_file_test.cc.o.d"
  "/root/repo/tests/win32_proc_detail_test.cc" "tests/CMakeFiles/ballista_tests.dir/win32_proc_detail_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/win32_proc_detail_test.cc.o.d"
  "/root/repo/tests/win32_test.cc" "tests/CMakeFiles/ballista_tests.dir/win32_test.cc.o" "gcc" "tests/CMakeFiles/ballista_tests.dir/win32_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/ballista_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/ballista_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/win32/CMakeFiles/ballista_win32.dir/DependInfo.cmake"
  "/root/repo/build/src/posix/CMakeFiles/ballista_posix.dir/DependInfo.cmake"
  "/root/repo/build/src/clib/CMakeFiles/ballista_clib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ballista_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ballista_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
