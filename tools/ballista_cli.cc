// ballista_cli — command-line driver for the reproduction.
//
//   ballista_cli list-muts  [--os NAME] [--api sys|clib]
//   ballista_cli list-types
//   ballista_cli list-groups [--os NAME]    (the functional-group registry)
//   ballista_cli run        [--os NAME] [--cap N] [--seed S] [--api sys|clib]
//                           [--groups LIST] [--mut-csv FILE] [--value-csv FILE]
//                           [--analyze]
//   ballista_cli repro      --os NAME --mut NAME --case I [--cap N] [--seed S]
//   ballista_cli crashes    [--os NAME] [--cap N]
//   ballista_cli tables     [--cap N]        (tables 1-3 + figures 1-2)
//   ballista_cli diff       BASELINE.blog NEW.blog
//   ballista_cli stats      FILE.blog
//
// OS names: win95 win98 win98se nt4 win2000 wince linux (default: all where
// a single OS is not required).  See README.md for the full flag table.
#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/ballista.h"
#include "core/diff.h"
#include "harness/world.h"
#include "rpc/server.h"
#include "store/format.h"
#include "store/store.h"

namespace {

using namespace ballista;

std::optional<sim::OsVariant> parse_os(const std::string& s) {
  if (s == "win95") return sim::OsVariant::kWin95;
  if (s == "win98") return sim::OsVariant::kWin98;
  if (s == "win98se") return sim::OsVariant::kWin98SE;
  if (s == "nt4") return sim::OsVariant::kWinNT4;
  if (s == "win2000") return sim::OsVariant::kWin2000;
  if (s == "wince") return sim::OsVariant::kWinCE;
  if (s == "linux") return sim::OsVariant::kLinux;
  return std::nullopt;
}

struct Args {
  std::string command;
  std::optional<sim::OsVariant> os;
  std::optional<core::ApiKind> api;
  std::uint64_t cap = core::kDefaultCap;
  std::uint64_t seed = 0x8a11157a;
  std::string mut;
  std::uint64_t case_index = 0;
  /// --groups LIST (run): comma-separated group tokens restricting the
  /// campaign (see `list-groups`); empty = the default-campaign groups.
  std::string groups;
  std::string mut_csv, value_csv;
  bool analyze = false;
  unsigned jobs = 1;
  /// --crash-points[=N] (run): crash-enumeration campaign testing up to N
  /// cuts per case (default 16).
  std::optional<std::uint64_t> crash_points;
  /// --cut K (repro): re-run the case with a fault cut armed at point K and
  /// report the post-reboot crash-consistency verdict.
  std::uint64_t cut = 0;
  /// --trace[=N]: print the last N rendered trace events for every
  /// Catastrophic MuT (run) or the whole machine tail (repro).
  std::optional<std::size_t> trace_events;
  /// --event-counters: print per-variant aggregate event-kind counters.
  bool event_counters = false;
  /// Persistent campaign store (run): --store writes a fresh .blog log,
  /// --resume recovers one and re-runs only missing shards, --baseline gates
  /// the run against an earlier log and fails on drift.
  std::string store, resume, baseline;
  /// Campaign service (serve/attach).  --sessions LIST opens one session per
  /// comma-separated OS token; --log-dir houses the per-session .blog files;
  /// --quota bounds shards per session per scheduling round; --detach-at /
  /// --halt-at park the first session after K streamed shards (detach-at
  /// reattaches once the others finish, halt-at leaves the partial log for a
  /// later `attach`); --wire-trace prints every decoded frame.
  std::string sessions;
  std::string log_dir;
  std::uint64_t quota = 2;
  std::optional<std::uint64_t> detach_at, halt_at;
  bool wire_trace = false;
  /// --shard-cases N (run/serve/attach): target cases per plan shard.  Part
  /// of the campaign fingerprint — both ends of a resume must agree on it.
  std::uint64_t shard_cases = 2048;
  /// --shard-bytes N (run): additionally cap each shard's estimated working
  /// set so one shard fits a cache budget.  Part of the campaign fingerprint
  /// when set (stored as a RunHeader tail); unset keeps historical shard
  /// boundaries and golden logs byte-identical.
  std::optional<std::uint64_t> shard_bytes;
  /// Non-flag operands (only the diff command takes any).
  std::vector<std::string> positional;
  /// Every `--flag` token seen, in order — pure-operand commands (diff,
  /// stats) reject any flag instead of silently ignoring it.
  std::vector<std::string> flags_seen;
  bool ok = true;
};

Args parse_args(int argc, char** argv) {
  Args a;
  if (argc < 2) {
    a.ok = false;
    return a;
  }
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag.rfind("--", 0) == 0) a.flags_seen.push_back(flag);
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        a.ok = false;
        return "";
      }
      return argv[++i];
    };
    if (flag == "--os") {
      a.os = parse_os(next());
      if (!a.os) a.ok = false;
    } else if (flag == "--cap") {
      a.cap = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--seed") {
      a.seed = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--mut") {
      a.mut = next();
    } else if (flag == "--case") {
      a.case_index = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--groups") {
      a.groups = next();
      if (a.groups.empty()) a.ok = false;
    } else if (flag == "--mut-csv") {
      a.mut_csv = next();
    } else if (flag == "--value-csv") {
      a.value_csv = next();
    } else if (flag == "--analyze") {
      a.analyze = true;
    } else if (flag == "--trace") {
      a.trace_events = 16;
    } else if (flag.rfind("--trace=", 0) == 0) {
      a.trace_events = std::strtoull(flag.c_str() + 8, nullptr, 10);
      if (*a.trace_events == 0) a.ok = false;
    } else if (flag == "--event-counters") {
      a.event_counters = true;
    } else if (flag == "--crash-points") {
      a.crash_points = 16;
    } else if (flag.rfind("--crash-points=", 0) == 0) {
      a.crash_points = std::strtoull(flag.c_str() + 15, nullptr, 10);
      if (*a.crash_points == 0) a.ok = false;
    } else if (flag == "--cut") {
      a.cut = std::strtoull(next(), nullptr, 10);
      if (a.cut == 0) a.ok = false;
    } else if (flag == "--jobs") {
      a.jobs = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
      if (a.jobs == 0) a.ok = false;
    } else if (flag == "--api") {
      const std::string v = next();
      if (v == "sys")
        a.api = core::ApiKind::kWin32Sys;  // resolved per-OS below
      else if (v == "clib")
        a.api = core::ApiKind::kCLib;
      else
        a.ok = false;
    } else if (flag == "--sessions") {
      a.sessions = next();
      if (a.sessions.empty()) a.ok = false;
    } else if (flag == "--log-dir") {
      a.log_dir = next();
      if (a.log_dir.empty()) a.ok = false;
    } else if (flag == "--quota") {
      a.quota = std::strtoull(next(), nullptr, 10);
      if (a.quota == 0) a.ok = false;
    } else if (flag == "--detach-at") {
      a.detach_at = std::strtoull(next(), nullptr, 10);
      if (*a.detach_at == 0) a.ok = false;
    } else if (flag == "--halt-at") {
      a.halt_at = std::strtoull(next(), nullptr, 10);
      if (*a.halt_at == 0) a.ok = false;
    } else if (flag == "--wire-trace") {
      a.wire_trace = true;
    } else if (flag == "--shard-cases") {
      a.shard_cases = std::strtoull(next(), nullptr, 10);
      if (a.shard_cases == 0) a.ok = false;
    } else if (flag == "--shard-bytes") {
      a.shard_bytes = std::strtoull(next(), nullptr, 10);
      if (*a.shard_bytes == 0) a.ok = false;
    } else if (flag == "--store") {
      a.store = next();
    } else if (flag == "--resume") {
      a.resume = next();
    } else if (flag == "--baseline") {
      a.baseline = next();
    } else if (flag.rfind("--", 0) == 0) {
      std::cerr << "unknown flag '" << flag << "'\n";
      a.ok = false;
    } else {
      a.positional.push_back(flag);
    }
  }
  return a;
}

int usage() {
  std::cerr <<
      "usage: ballista_cli <command> [flags]\n"
      "  list-muts [--os NAME] [--api sys|clib]   catalog of modules under test\n"
      "  list-types                               data types and value pools\n"
      "  list-groups [--os NAME]                  functional-group registry\n"
      "  run [--os NAME] [--cap N] [--seed S] [--api sys|clib] [--jobs N]\n"
      "      [--groups LIST] [--mut-csv F] [--value-csv F] [--analyze]\n"
      "      [--trace[=N]] [--event-counters] [--crash-points[=N]]\n"
      "      [--store F.blog | --resume F.blog] [--baseline F.blog]\n"
      "      [--shard-cases N] [--shard-bytes N]\n"
      "  serve --sessions LIST [--cap N] [--seed S] [--jobs N] [--quota N]\n"
      "      [--shard-cases N] [--log-dir D] [--detach-at K | --halt-at K]\n"
      "      [--wire-trace]                       multi-session campaign server\n"
      "  attach --os NAME --log-dir D [--cap N] [--seed S] [--jobs N]\n"
      "      [--shard-cases N] [--wire-trace]     reattach a parked campaign\n"
      "  repro --os NAME --mut NAME --case I [--trace[=N]] [--cut K]\n"
      "                                           single-test reproduction\n"
      "                                           (--mut accepts group:Name)\n"
      "  crashes [--os NAME] [--cap N] [--jobs N] Catastrophic function lists\n"
      "  tables [--cap N] [--jobs N]              all paper tables and figures\n"
      "  diff BASELINE.blog NEW.blog              cross-run regression diff\n"
      "  stats FILE.blog                          sealed-log summary (CRASH\n"
      "                                           histogram, worst MuTs)\n"
      "OS names: win95 win98 win98se nt4 win2000 wince linux\n"
      "--groups LIST restricts a run to comma-separated group tokens (see\n"
      "`list-groups`; 'all' = every group including growth groups).  The\n"
      "default campaign covers the paper's twelve groups only.\n"
      "--jobs N runs each campaign on N worker machines; results are\n"
      "identical for every N (deterministic sharded engine).\n"
      "--trace[=N] dumps the causal event chain behind each Catastrophic\n"
      "failure; --event-counters prints per-variant kernel-event totals.\n"
      "--store appends each completed shard to a crash-safe log; --resume\n"
      "recovers such a log and re-runs only the missing shards; --baseline\n"
      "diffs the run against an earlier log and exits 3 on any drift.\n"
      "Store flags require a single --os.  See README.md for details.\n"
      "--shard-bytes N additionally caps each shard's estimated working set\n"
      "(cache-footprint shard sizing); the merged results are identical, only\n"
      "shard boundaries move.  Both ends of a resume must agree on it.\n"
      "--crash-points[=N] runs a crash-enumeration campaign instead of a\n"
      "robustness campaign: each case's persistence points are counted, then\n"
      "up to N cuts per case are injected and post-reboot consistency is\n"
      "verified.  Store/resume/baseline/jobs compose; repro --cut K replays\n"
      "one (MuT, case, k) cut standalone.\n"
      "`serve` multiplexes one campaign session per --sessions OS token over\n"
      "a shared machine pool; with --log-dir each session streams into its\n"
      "own .blog.  --detach-at K parks the first session after K streamed\n"
      "shards and reattaches it once the others finish; --halt-at K parks it\n"
      "and exits, leaving the partial log for a later `attach`.  Both ends of\n"
      "a resume must agree on cap/seed/--shard-cases (the fingerprint).\n";
  return 2;
}

core::ApiKind sys_kind_for(sim::OsVariant v) {
  return v == sim::OsVariant::kLinux ? core::ApiKind::kPosixSys
                                     : core::ApiKind::kWin32Sys;
}

/// Resolved --groups filter.  A list equal to the default-campaign set
/// normalizes to "no filter" so `run` and `run --groups <defaults>` produce
/// byte-identical logs (same RunHeader, no group-filter tail).
struct GroupsArg {
  bool ok = true;
  std::optional<std::uint32_t> mask;
};

GroupsArg parse_groups(const Args& a) {
  GroupsArg g;
  if (a.groups.empty()) return g;
  std::string err;
  const auto mask = core::parse_group_list(a.groups, &err);
  if (!mask) {
    std::cerr << err << "\n";
    g.ok = false;
    return g;
  }
  if (*mask != core::kDefaultCampaignGroupMask) g.mask = *mask;
  return g;
}

int cmd_list_groups(const harness::World& world, const Args& a) {
  const char* api_names[] = {"win32", "posix", "clib"};
  std::cout << "id  token        group                     api    default  "
               "crash  MuTs\n";
  for (const core::GroupDescriptor& d : core::kGroupTable) {
    std::size_t muts = 0;
    for (const auto& m : world.registry.muts()) {
      if (m.group != d.id) continue;
      if (a.os && !m.supported_on(*a.os)) continue;
      ++muts;
    }
    std::cout << std::left << std::setw(4)
              << static_cast<unsigned>(core::group_index(d.id))
              << std::setw(13) << d.token << std::setw(26) << d.name
              << std::setw(7) << api_names[static_cast<unsigned>(d.api)]
              << std::setw(9) << (d.in_default_campaign ? "yes" : "no")
              << std::setw(7) << (d.crash_default ? "yes" : "no") << muts
              << "\n";
    std::cout << "      pools: " << d.pools << "\n";
    std::cout << "      dispatch: " << d.dispatch << "\n";
    // Per-variant MuT counts: where the group's surface shrinks (Win95's
    // missing calls, the CE subset, win32-vs-posix flavors) shows up here.
    std::cout << "      muts:";
    static const char* kOsTokens[] = {"win95",   "win98", "win98se", "nt4",
                                      "win2000", "wince", "linux"};
    for (sim::OsVariant v : sim::kAllVariants) {
      std::size_t n = 0;
      for (const auto& m : world.registry.muts())
        if (m.group == d.id && m.supported_on(v)) ++n;
      std::cout << " " << kOsTokens[static_cast<unsigned>(v)] << "=" << n;
    }
    std::cout << "\n";
    std::cout << "      crash-campaign: "
              << (d.crash_default ? "default member" : "opt-in via --groups")
              << "\n";
  }
  std::cout << std::right << "-- " << core::kGroupCount << " groups";
  if (a.os) std::cout << " (MuT counts for " << sim::variant_name(*a.os) << ")";
  std::cout << "\n";
  return 0;
}

std::vector<sim::OsVariant> os_list(const Args& a) {
  if (a.os) return {*a.os};
  return {sim::kAllVariants.begin(), sim::kAllVariants.end()};
}

int cmd_list_muts(const harness::World& world, const Args& a) {
  const sim::OsVariant v = a.os.value_or(sim::OsVariant::kWinNT4);
  int n = 0;
  for (const core::MuT* m : world.registry.for_variant(v)) {
    if (a.api) {
      const core::ApiKind want =
          *a.api == core::ApiKind::kWin32Sys ? sys_kind_for(v) : *a.api;
      if (m->api != want) continue;
    }
    std::cout << m->name << "  [" << core::group_name(m->group) << "]  "
              << m->params.size() << " params";
    if (m->hazard_on(v) != core::CrashStyle::kNone)
      std::cout << "  HAZARD"
                << (m->hazard_on(v) == core::CrashStyle::kDeferred ? "*" : "");
    std::cout << "\n";
    ++n;
  }
  std::cout << "-- " << n << " modules under test on " << sim::variant_name(v)
            << "\n";
  return 0;
}

int cmd_list_types(const harness::World& world) {
  for (const auto& t : world.types.types()) {
    std::cout << t->name();
    if (t->parent() != nullptr) std::cout << " : " << t->parent()->name();
    std::cout << "  (" << t->value_count() << " values)\n";
    for (const core::TestValue* v : t->values())
      std::cout << "    " << (v->exceptional ? "! " : "  ") << v->name
                << "\n";
  }
  std::cout << "-- " << world.types.type_count() << " types, "
            << world.types.total_values() << " test values\n";
  return 0;
}

void print_observability(const core::CampaignResult& r, const Args& a) {
  if (a.event_counters)
    std::cout << sim::variant_name(r.variant) << " events: "
              << trace::counters_json(r.event_counters) << "\n";
  if (!a.trace_events) return;
  for (const core::MutStats& s : r.stats) {
    if (!s.catastrophic || s.crash_trace.empty()) continue;
    std::cout << sim::variant_name(r.variant) << " / " << s.mut->name
              << " crash chain (" << s.crash_detail << "):\n";
    std::vector<trace::TraceEvent> tail = s.crash_trace;
    if (tail.size() > *a.trace_events)
      tail.erase(tail.begin(),
                 tail.end() - static_cast<std::ptrdiff_t>(*a.trace_events));
    std::cout << trace::render_tail(tail);
  }
}

void print_crash_summary(std::ostream& os,
                         const core::CrashCampaignResult& r) {
  os << sim::variant_name(r.variant) << " crash enumeration: "
     << r.stats.size() << " MuTs, " << r.total_points << " persistence "
     << "points, " << r.total_cuts << " cuts (" << r.consistent
     << " consistent, " << r.inconsistent << " inconsistent, " << r.no_cut
     << " no-cut), " << r.reboots << " reboot(s)\n";
  os << "  points by kind:";
  std::array<std::uint64_t, sim::kMutationKindCount> kinds{};
  for (const core::CrashMutStats& s : r.stats)
    for (std::size_t k = 0; k < sim::kMutationKindCount; ++k)
      kinds[k] += s.point_counts[k];
  for (std::size_t k = 0; k < sim::kMutationKindCount; ++k)
    if (kinds[k] != 0)
      os << " " << sim::mutation_kind_name(static_cast<sim::MutationKind>(k))
         << "=" << kinds[k];
  os << "\n";
  for (const core::CrashMutStats& s : r.stats)
    for (const core::CutRecord& f : s.findings)
      os << "  " << core::crash_verdict_name(f.verdict) << ": " << s.mut->name
         << " case " << f.case_index << " cut " << f.cut_at
         << (f.detail.empty() ? "" : "  (" + f.detail + ")") << "\n";
}

int cmd_run_crash(const harness::World& world, const Args& a,
                  const GroupsArg& groups) {
  if (a.api) {
    std::cerr << "--api does not apply to crash enumeration (the group mask "
                 "selects the MuTs)\n";
    return 2;
  }
  std::vector<core::CrashCampaignResult> results;
  for (sim::OsVariant v : os_list(a)) {
    core::CrashOptions opt;
    opt.cap = a.cap;
    opt.seed = a.seed;
    opt.jobs = a.jobs;
    opt.max_cuts = *a.crash_points;
    // --groups overrides the default crash mask (filedir|memory).
    if (groups.mask) opt.group_mask = *groups.mask;
    if (!a.store.empty() || !a.resume.empty()) {
      const bool resume = !a.resume.empty();
      const std::string& path = resume ? a.resume : a.store;
      store::CrashStoreRun run =
          store::run_crash_with_store(v, world.registry, opt, path, resume);
      if (!run.ok) {
        std::cerr << run.error << "\n";
        return 1;
      }
      std::cout << path << ": " << run.shards_reused
                << " shard(s) replayed from the log, " << run.shards_executed
                << " executed\n";
      results.push_back(std::move(run.result));
    } else {
      results.push_back(core::run_crash_engine(v, world.registry, opt));
    }
  }
  for (const auto& r : results) print_crash_summary(std::cout, r);
  if (!a.baseline.empty()) {
    const store::CrashStoreRun base =
        store::load_crash_result(world.registry, a.baseline);
    if (!base.ok) {
      std::cerr << base.error << "\n";
      return 1;
    }
    const std::string d =
        core::diff_crash_results(base.result, results.front());
    if (!d.empty()) {
      std::cerr << "regression gate: crash run drifted from baseline "
                << a.baseline << ": " << d << "\n";
      return 3;
    }
    std::cout << "crash run identical to baseline " << a.baseline << "\n";
  }
  return 0;
}

int cmd_run(const harness::World& world, const Args& a) {
  if (!a.store.empty() && !a.resume.empty()) {
    std::cerr << "--store and --resume are mutually exclusive\n";
    return 2;
  }
  const bool uses_store =
      !a.store.empty() || !a.resume.empty() || !a.baseline.empty();
  if (uses_store && !a.os) {
    std::cerr << "--store/--resume/--baseline need a single --os "
                 "(a campaign log holds one OS variant)\n";
    return 2;
  }
  const GroupsArg groups = parse_groups(a);
  if (!groups.ok) return usage();
  if (a.crash_points) return cmd_run_crash(world, a, groups);
  std::vector<core::CampaignResult> results;
  for (sim::OsVariant v : os_list(a)) {
    core::CampaignOptions opt;
    opt.cap = a.cap;
    opt.seed = a.seed;
    opt.jobs = a.jobs;
    opt.shard_cases = a.shard_cases;
    opt.shard_bytes = a.shard_bytes;
    opt.group_mask = groups.mask;
    if (a.api)
      opt.only_api =
          *a.api == core::ApiKind::kWin32Sys ? sys_kind_for(v) : *a.api;
    if (!a.store.empty() || !a.resume.empty()) {
      const bool resume = !a.resume.empty();
      const std::string& path = resume ? a.resume : a.store;
      store::StoreRun run =
          store::run_with_store(v, world.registry, opt, path, resume);
      if (!run.ok) {
        std::cerr << run.error << "\n";
        return 1;
      }
      std::cout << path << ": " << run.shards_reused
                << " shard(s) replayed from the log, " << run.shards_executed
                << " executed\n";
      results.push_back(std::move(run.result));
    } else {
      results.push_back(core::Campaign::run(v, world.registry, opt));
    }
  }
  core::print_table1(std::cout, results);
  for (const auto& r : results) print_observability(r, a);
  for (const auto& r : results) {
    if (!a.mut_csv.empty()) {
      std::ofstream f(a.mut_csv, results.size() == 1
                                     ? std::ios::out
                                     : std::ios::app);
      core::write_mut_csv(f, r);
    }
    if (a.analyze || !a.value_csv.empty()) {
      const auto analysis = core::analyze_values(r, a.cap, a.seed);
      if (a.analyze) {
        std::cout << "\n" << sim::variant_name(r.variant) << "\n";
        core::print_value_analysis(std::cout, analysis);
      }
      if (!a.value_csv.empty()) {
        std::ofstream f(a.value_csv);
        core::write_value_csv(f, analysis);
      }
    }
  }
  if (!a.baseline.empty()) {
    const store::StoreRun base =
        store::load_result(world.registry, a.baseline);
    if (!base.ok) {
      std::cerr << base.error << "\n";
      return 1;
    }
    const core::CampaignDiff d =
        core::diff_campaigns(base.result, results.front());
    core::print_diff(std::cout, d);
    if (!d.identical()) {
      std::cerr << "regression gate: run drifted from baseline " << a.baseline
                << "\n";
      return 3;
    }
  }
  return 0;
}

/// Whether the log at `path` is a crash-enumeration log (nullopt when the
/// header is unreadable — the load drivers will produce the real error).
std::optional<bool> log_is_crash(const std::string& path) {
  const store::StoreContents c = store::read_store_file(path);
  if (c.status == store::ReadStatus::kBadHeader) return std::nullopt;
  return c.header.crash_mode != 0;
}

int cmd_diff(const harness::World& world, const Args& a) {
  if (a.positional.size() != 2) {
    std::cerr << "diff takes exactly two .blog files\n";
    return usage();
  }
  const std::optional<bool> base_crash = log_is_crash(a.positional[0]);
  const std::optional<bool> next_crash = log_is_crash(a.positional[1]);
  if (base_crash && next_crash && *base_crash != *next_crash) {
    std::cerr << "cannot diff a crash-enumeration log against a robustness "
                 "log\n";
    return 2;
  }
  if (base_crash.value_or(false)) {
    const store::CrashStoreRun base =
        store::load_crash_result(world.registry, a.positional[0]);
    if (!base.ok) {
      std::cerr << base.error << "\n";
      return 2;
    }
    const store::CrashStoreRun next =
        store::load_crash_result(world.registry, a.positional[1]);
    if (!next.ok) {
      std::cerr << next.error << "\n";
      return 2;
    }
    const std::string d = core::diff_crash_results(base.result, next.result);
    if (d.empty()) {
      std::cout << "identical crash campaigns\n";
      return 0;
    }
    std::cout << d << "\n";
    return 1;
  }
  const store::StoreRun base =
      store::load_result(world.registry, a.positional[0]);
  if (!base.ok) {
    std::cerr << base.error << "\n";
    return 2;
  }
  const store::StoreRun next =
      store::load_result(world.registry, a.positional[1]);
  if (!next.ok) {
    std::cerr << next.error << "\n";
    return 2;
  }
  const core::CampaignDiff d = core::diff_campaigns(base.result, next.result);
  core::print_diff(std::cout, d);
  return d.identical() ? 0 : 1;
}

// Summarizes a sealed campaign log: variant, case volume, a CRASH-severity
// histogram over case codes, and the worst-failing MuTs.  Pure reader — the
// log is decoded by the same store::load_result path `diff` and `--baseline`
// use, so a log any of them accepts is one `stats` accepts.
int cmd_stats(const harness::World& world, const Args& a) {
  if (a.positional.size() != 1) {
    std::cerr << "stats takes exactly one .blog file\n";
    return usage();
  }
  if (log_is_crash(a.positional[0]).value_or(false)) {
    const store::CrashStoreRun run =
        store::load_crash_result(world.registry, a.positional[0]);
    if (!run.ok) {
      std::cerr << run.error << "\n";
      return 2;
    }
    std::cout << a.positional[0] << ": ";
    print_crash_summary(std::cout, run.result);
    return 0;
  }
  const store::StoreRun run = store::load_result(world.registry, a.positional[0]);
  if (!run.ok) {
    std::cerr << run.error << "\n";
    return 2;
  }
  const core::CampaignResult& r = run.result;

  std::uint64_t cases = 0, pass = 0, abort = 0, restart = 0, silent = 0,
                hindering = 0, catastrophic = 0;
  for (const core::MutStats& s : r.stats) {
    cases += s.executed;
    pass += s.passes;
    abort += s.aborts;
    restart += s.restarts;
    silent += s.silent_candidates;
    hindering += s.hindering;
    if (s.catastrophic) ++catastrophic;
  }
  std::cout << a.positional[0] << ": " << sim::variant_name(r.variant) << ", "
            << r.stats.size() << " MuTs, " << cases << " cases, "
            << r.reboots << " reboot(s)\n";

  const auto pct = [&](std::uint64_t n) {
    return cases == 0 ? 0.0 : 100.0 * static_cast<double>(n) / cases;
  };
  std::cout << "CRASH severity histogram (cases; Catastrophic counts MuTs):\n"
            << std::fixed << std::setprecision(1);
  std::cout << "  Catastrophic  " << std::setw(6) << catastrophic << " MuT(s)\n";
  std::cout << "  Restart       " << std::setw(6) << restart << "  ("
            << pct(restart) << "%)\n";
  std::cout << "  Abort         " << std::setw(6) << abort << "  ("
            << pct(abort) << "%)\n";
  std::cout << "  Silent cand.  " << std::setw(6) << silent << "  ("
            << pct(silent) << "%)\n";
  std::cout << "  Hindering     " << std::setw(6) << hindering << "  ("
            << pct(hindering) << "%)\n";
  std::cout << "  Pass          " << std::setw(6) << pass << "  ("
            << pct(pass) << "%)\n";

  std::vector<const core::MutStats*> worst;
  for (const core::MutStats& s : r.stats)
    if (s.catastrophic || s.aborts + s.restarts > 0) worst.push_back(&s);
  std::sort(worst.begin(), worst.end(),
            [](const core::MutStats* x, const core::MutStats* y) {
              if (x->catastrophic != y->catastrophic) return x->catastrophic;
              const std::uint64_t xf = x->aborts + x->restarts;
              const std::uint64_t yf = y->aborts + y->restarts;
              if (xf != yf) return xf > yf;
              return x->mut->name < y->mut->name;
            });
  constexpr std::size_t kTopN = 10;
  if (worst.size() > kTopN) worst.resize(kTopN);
  if (!worst.empty()) std::cout << "worst MuTs:\n";
  for (const core::MutStats* s : worst) {
    std::cout << "  " << s->mut->name << "  " << s->aborts + s->restarts << "/"
              << s->executed << " failing";
    if (s->catastrophic)
      std::cout << "  CATASTROPHIC (" << s->crash_detail << ")";
    std::cout << "\n";
  }
  return 0;
}

int cmd_repro(const harness::World& world, const Args& a) {
  if (!a.os || a.mut.empty()) return usage();
  // "group:Name" disambiguates API names that exist in more than one group
  // (sync re-registers e.g. CreateEvent; bare names resolve to the paper
  // MuT).  Lookups resolve through --os: the sockets group registers a
  // Winsock and a BSD MuT under the same bare name (socket, bind, ...), told
  // apart only by which variants support them.
  const core::MuT* mut = nullptr;
  if (const auto colon = a.mut.find(':'); colon != std::string::npos) {
    const core::GroupDescriptor* d =
        core::group_from_token(a.mut.substr(0, colon));
    if (d == nullptr) {
      std::cerr << "unknown group '" << a.mut.substr(0, colon) << "' (valid: "
                << core::group_token_list() << ")\n";
      return 1;
    }
    mut = world.registry.find(a.mut.substr(colon + 1), d->id, *a.os);
    if (mut == nullptr)  // fall back for the not-on-this-OS diagnostic below
      mut = world.registry.find(a.mut.substr(colon + 1), d->id);
  } else {
    mut = world.registry.find(a.mut, std::nullopt, *a.os);
    if (mut == nullptr) mut = world.registry.find(a.mut);
  }
  if (mut == nullptr) {
    std::cerr << "no such MuT: " << a.mut << "\n";
    return 1;
  }
  if (!mut->supported_on(*a.os)) {
    std::cerr << a.mut << " is not part of the "
              << sim::variant_name(*a.os) << " API\n";
    return 1;
  }
  core::TupleGenerator gen(*mut, a.cap, a.seed);
  if (a.case_index >= gen.count()) {
    std::cerr << "case index out of range (0.." << gen.count() - 1 << ")\n";
    return 1;
  }
  const auto tuple = gen.tuple(a.case_index);
  std::cout << a.mut << " case " << a.case_index << " = "
            << core::describe_tuple(tuple) << "\n";

  if (a.cut != 0) {
    // Standalone crash-consistency probe: counting pass, armed cut at point
    // K, reboot, verify — the repro path for one campaign finding.
    std::string detail;
    const core::CrashVerdict v = core::crash_probe_case(
        *a.os, *mut, a.case_index, a.cut, a.cap, a.seed, &detail);
    std::cout << "cut " << a.cut << ": " << core::crash_verdict_name(v);
    if (!detail.empty()) std::cout << "  (" << detail << ")";
    std::cout << "\n";
    return v == core::CrashVerdict::kConsistent ? 0 : 1;
  }

  sim::Machine machine(*a.os);
  core::Executor executor(machine);
  const core::CaseResult r = executor.run_case(
      *mut, tuple, static_cast<std::int64_t>(a.case_index));
  std::cout << "outcome: " << core::outcome_name(r.outcome);
  if (!r.detail.empty()) std::cout << "  (" << r.detail << ")";
  std::cout << "\n";
  if (machine.crashed())
    std::cout << "machine state: CRASHED — reboot required\n";
  if (a.trace_events) {
    std::cout << "trace:\n"
              << trace::render_tail(machine.trace().tail(*a.trace_events));
  }
  if (a.event_counters)
    std::cout << "events: " << trace::counters_json(r.events) << "\n";
  return r.outcome == core::Outcome::kPass ? 0 : 1;
}

int cmd_crashes(const harness::World& world, const Args& a) {
  std::vector<core::CampaignResult> results;
  for (sim::OsVariant v : os_list(a)) {
    core::CampaignOptions opt;
    opt.cap = a.cap;
    opt.seed = a.seed;
    opt.jobs = a.jobs;
    results.push_back(core::Campaign::run(v, world.registry, opt));
  }
  core::print_table3(std::cout, results);
  for (const auto& r : results) print_observability(r, a);
  return 0;
}

int cmd_tables(const harness::World& world, const Args& a) {
  core::CampaignOptions opt;
  opt.cap = a.cap;
  opt.seed = a.seed;
  opt.jobs = a.jobs;
  auto results = harness::run_all_variants(world, opt);
  core::print_table1(std::cout, results);
  std::cout << "\n";
  core::print_table2(std::cout, results);
  std::cout << "\n";
  core::print_figure1(std::cout, results);
  std::cout << "\n";
  core::print_table3(std::cout, results);
  std::cout << "\n";
  auto desktops = harness::desktop_subset(std::move(results));
  const auto voted = core::vote_silent(desktops);
  core::print_figure2(std::cout, desktops, voted);
  return 0;
}

// --- campaign service (serve / attach) --------------------------------------

const char* os_token(sim::OsVariant v) {
  static const char* kTokens[] = {"win95",   "win98", "win98se", "nt4",
                                  "win2000", "wince", "linux"};
  return kTokens[static_cast<unsigned>(v)];
}

core::CampaignOptions service_options(const Args& a) {
  core::CampaignOptions opt;
  opt.cap = a.cap;
  opt.seed = a.seed;
  opt.shard_cases = a.shard_cases;
  return opt;
}

void enable_wire_trace(rpc::CampaignServer& server) {
  server.wire_trace = [](char dir, const rpc::Message& m) {
    std::cout << (dir == '<' ? "<- " : "-> ") << rpc::describe(m) << "\n";
  };
}

int report_client_error(sim::OsVariant v, const rpc::Error& e) {
  std::cerr << os_token(v) << ": " << rpc::error_code_name(e.code) << ": "
            << e.message << "\n";
  return 1;
}

/// Steps the server and polls every client until each one is complete,
/// errored, or detached.  Returns false only if the step budget runs out —
/// a wedged service, which the session-layer tests promise cannot happen.
bool pump_service(rpc::CampaignServer& server,
                  const std::vector<rpc::CampaignClient*>& clients) {
  for (int i = 0; i < (1 << 20); ++i) {
    server.step();
    bool pending = false;
    for (rpc::CampaignClient* c : clients) {
      c->poll();
      if (c->attached() && !c->complete() && !c->error()) pending = true;
    }
    if (!pending && !server.step()) return true;
  }
  return false;
}

int cmd_serve(const harness::World& world, const Args& a) {
  if (a.sessions.empty()) {
    std::cerr << "serve needs --sessions LIST (comma-separated OS names)\n";
    return usage();
  }
  std::vector<sim::OsVariant> variants;
  for (std::size_t start = 0;;) {
    const std::size_t comma = a.sessions.find(',', start);
    const std::string tok = a.sessions.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    const auto v = parse_os(tok);
    if (!v) {
      std::cerr << "unknown OS '" << tok << "' in --sessions\n";
      return usage();
    }
    variants.push_back(*v);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (a.detach_at && a.halt_at) {
    std::cerr << "--detach-at and --halt-at are mutually exclusive\n";
    return 2;
  }
  if ((a.detach_at || a.halt_at) && a.log_dir.empty()) {
    std::cerr << "--detach-at/--halt-at need --log-dir (the parked campaign "
                 "must survive in its .blog)\n";
    return 2;
  }

  rpc::ServerConfig cfg;
  cfg.log_dir = a.log_dir;
  cfg.jobs = a.jobs;
  cfg.quota = a.quota;
  if (variants.size() > cfg.max_sessions) cfg.max_sessions = variants.size();
  rpc::CampaignServer server(world.registry, cfg);
  if (a.wire_trace) enable_wire_trace(server);

  const core::CampaignOptions opt = service_options(a);
  std::vector<std::unique_ptr<rpc::Channel>> channels;
  std::vector<std::unique_ptr<rpc::CampaignClient>> clients;
  for (sim::OsVariant v : variants) {
    channels.push_back(std::make_unique<rpc::Channel>());
    server.bind(channels.back()->a());
    clients.push_back(std::make_unique<rpc::CampaignClient>(
        channels.back()->b(), world.registry, v, opt));
    if (!clients.back()->hello()) {
      std::cerr << "could not enqueue hello for " << os_token(v) << "\n";
      return 1;
    }
  }

  const std::uint64_t drop_at = a.detach_at.value_or(a.halt_at.value_or(0));
  bool dropped = false;
  for (int i = 0; i < (1 << 20); ++i) {
    server.step();
    bool pending = false;
    for (std::size_t c = 0; c < clients.size(); ++c) {
      rpc::CampaignClient& cl = *clients[c];
      if (!cl.poll()) return report_client_error(variants[c], *cl.error());
      if (c == 0 && drop_at != 0 && !dropped &&
          cl.outcomes_received() >= drop_at) {
        cl.detach();
        dropped = true;
        std::cout << os_token(variants[0]) << ": detached after "
                  << cl.outcomes_received() << " of "
                  << cl.plan().shards.size() << " shard(s)\n";
      }
      if (cl.attached() && !cl.complete()) pending = true;
    }
    if (!pending && !server.step()) break;
  }

  if (a.detach_at && dropped) {
    // The parked session comes back after everyone else finished; the server
    // replays what the log already holds and streams only the missing tail.
    clients[0] = std::make_unique<rpc::CampaignClient>(
        channels[0]->b(), world.registry, variants[0], opt);
    if (!clients[0]->hello()) return 1;
    if (!pump_service(server, {clients[0].get()})) {
      std::cerr << "campaign service wedged during reattach\n";
      return 1;
    }
    if (clients[0]->error())
      return report_client_error(variants[0], *clients[0]->error());
    std::cout << os_token(variants[0]) << ": reattached, "
              << clients[0]->reused() << " shard(s) already in the log, "
              << clients[0]->outcomes_received() << " streamed\n";
  }

  for (std::size_t c = 0; c < clients.size(); ++c) {
    const rpc::CampaignClient& cl = *clients[c];
    if (a.halt_at && c == 0 && dropped) {
      std::cout << os_token(variants[c])
                << ": parked mid-campaign (resume with `ballista_cli attach "
                   "--os "
                << os_token(variants[c]) << " --log-dir " << a.log_dir
                << "`)\n";
      continue;
    }
    if (const auto result = cl.result()) {
      std::cout << os_token(variants[c]) << ": complete, "
                << result->total_cases << " case(s), " << result->reboots
                << " reboot(s)\n";
    } else if (cl.complete()) {
      std::cout << os_token(variants[c]) << ": complete (merged totals in "
                << a.log_dir << ")\n";
    } else {
      std::cerr << os_token(variants[c]) << ": campaign did not complete\n";
      return 1;
    }
  }
  return 0;
}

int cmd_attach(const harness::World& world, const Args& a) {
  if (!a.os || a.log_dir.empty()) {
    std::cerr << "attach needs --os NAME and --log-dir DIR\n";
    return usage();
  }
  rpc::ServerConfig cfg;
  cfg.log_dir = a.log_dir;
  cfg.jobs = a.jobs;
  cfg.quota = a.quota;
  rpc::CampaignServer server(world.registry, cfg);
  if (a.wire_trace) enable_wire_trace(server);

  const core::CampaignOptions opt = service_options(a);
  rpc::Channel ch;
  server.bind(ch.a());
  rpc::CampaignClient client(ch.b(), world.registry, *a.os, opt);
  if (!client.hello()) return 1;
  if (!pump_service(server, {&client})) {
    std::cerr << "campaign service wedged\n";
    return 1;
  }

  const core::Plan plan = core::plan_for(*a.os, world.registry, opt);
  const std::string path = server.log_path(store::make_run_header(plan, opt));
  if (client.error()) {
    if (client.error()->code != rpc::ErrorCode::kSessionSealed)
      return report_client_error(*a.os, *client.error());
    std::cout << path << ": campaign already complete\n";
  } else if (client.complete()) {
    std::cout << path << ": " << client.reused()
              << " shard(s) replayed from the log, "
              << client.outcomes_received() << " streamed\n";
  } else {
    std::cerr << "campaign did not complete\n";
    return 1;
  }
  const store::StoreRun run = store::load_result(world.registry, path);
  if (!run.ok) {
    std::cerr << run.error << "\n";
    return 1;
  }
  std::cout << os_token(*a.os) << ": " << run.result.total_cases
            << " case(s), " << run.result.reboots << " reboot(s)\n";
  return 0;
}

}  // namespace

/// Flags each subcommand accepts.  Anything else — a flag that belongs to a
/// different subcommand, or a trailing operand — would be silently ignored,
/// which hides typos like `repro --store x.blog` or `run nt4`; reject with
/// usage + exit 2 instead (same contract as the diff/stats operand checks).
const std::set<std::string>* allowed_flags(const std::string& command) {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"list-muts", {"--os", "--api"}},
      {"list-types", {}},
      {"list-groups", {"--os"}},
      {"run",
       {"--os", "--cap", "--seed", "--api", "--jobs", "--groups", "--mut-csv",
        "--value-csv", "--analyze", "--trace", "--event-counters",
        "--crash-points", "--store", "--resume", "--baseline",
        "--shard-cases", "--shard-bytes"}},
      {"serve",
       {"--sessions", "--cap", "--seed", "--jobs", "--quota", "--shard-cases",
        "--log-dir", "--detach-at", "--halt-at", "--wire-trace"}},
      {"attach",
       {"--os", "--cap", "--seed", "--jobs", "--quota", "--shard-cases",
        "--log-dir", "--wire-trace"}},
      {"repro",
       {"--os", "--mut", "--case", "--cap", "--seed", "--trace", "--cut",
        "--event-counters"}},
      {"crashes", {"--os", "--cap", "--seed", "--jobs", "--trace",
                   "--event-counters"}},
      {"tables", {"--cap", "--seed", "--jobs"}},
      {"diff", {}},
      {"stats", {}},
  };
  const auto it = kAllowed.find(command);
  return it == kAllowed.end() ? nullptr : &it->second;
}

int main(int argc, char** argv) {
  const Args a = parse_args(argc, argv);
  if (!a.ok) return usage();
  const std::set<std::string>* allowed = allowed_flags(a.command);
  if (allowed != nullptr) {
    for (const std::string& f : a.flags_seen) {
      const std::string base = f.substr(0, f.find('='));  // --trace=8 → --trace
      if (allowed->count(base) == 0) {
        std::cerr << "unexpected argument '" << base << "' for " << a.command
                  << "\n";
        return usage();
      }
    }
  }
  if (a.command != "diff" && a.command != "stats" && !a.positional.empty()) {
    std::cerr << "unexpected argument '" << a.positional.front() << "' for "
              << a.command << "\n";
    return usage();
  }
  auto world = harness::build_world();
  if (a.command == "list-muts") return cmd_list_muts(*world, a);
  if (a.command == "list-types") return cmd_list_types(*world);
  if (a.command == "list-groups") return cmd_list_groups(*world, a);
  if (a.command == "run") return cmd_run(*world, a);
  if (a.command == "serve") return cmd_serve(*world, a);
  if (a.command == "attach") return cmd_attach(*world, a);
  if (a.command == "repro") return cmd_repro(*world, a);
  if (a.command == "crashes") return cmd_crashes(*world, a);
  if (a.command == "tables") return cmd_tables(*world, a);
  if (a.command == "diff") return cmd_diff(*world, a);
  if (a.command == "stats") return cmd_stats(*world, a);
  return usage();
}
